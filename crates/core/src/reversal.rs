//! Reversing the bit-domain half of the TX chain: QAM demap →
//! deinterleave → FEC "decode" (weighted Viterbi or the real-time solver) →
//! descramble (paper Secs 2.7–2.8).

use crate::qam::QuantizedSymbol;
use crate::telemetry::{self, Counter};
use bluefi_coding::lfsr::Lfsr7;
use bluefi_coding::realtime::realtime_plan;
use bluefi_coding::viterbi::{decode_punctured, reencode_flips};
use bluefi_coding::{CodeRate, FreeEdge, ViterbiScratch};
use bluefi_wifi::qam::demap_point;
use bluefi_wifi::Interleaver;
use bluefi_wifi::Mcs;

/// Weight classes for the modified Viterbi (paper Table 1).
#[derive(Debug, Clone, Copy)]
pub struct WeightProfile {
    /// Weight for bits on subcarriers inside the main Bluetooth spectrum.
    pub high: u32,
    /// Weight for bits on the adjacent guard subcarriers.
    pub medium: u32,
    /// Weight everywhere else.
    pub low: u32,
    /// Half-width (in subcarriers) of the main Bluetooth band.
    pub band: f64,
    /// Additional half-width of the medium-weight guard band.
    pub guard: f64,
}

impl Default for WeightProfile {
    fn default() -> WeightProfile {
        // Table 1: 1000 on the 8 subcarriers of the main spectrum, 100 on
        // the 4 adjacent on each side, 1 elsewhere.
        WeightProfile { high: 1000, medium: 100, low: 1, band: 4.0, guard: 8.0 }
    }
}

impl WeightProfile {
    /// The weight for a coded bit mapped to `subcarrier` when the Bluetooth
    /// signal is centered at `bt_subcarrier`.
    pub fn weight_at(&self, subcarrier: i32, bt_subcarrier: f64) -> u32 {
        let d = (subcarrier as f64 - bt_subcarrier).abs();
        if d <= self.band {
            self.high
        } else if d <= self.guard {
            self.medium
        } else {
            self.low
        }
    }
}

/// Demaps and deinterleaves quantized symbols back to the coded bit stream,
/// attaching a weight to every transmitted bit.
pub fn coded_stream(
    symbols: &[QuantizedSymbol],
    mcs: Mcs,
    bt_subcarrier: f64,
    profile: &WeightProfile,
) -> (Vec<bool>, Vec<u32>) {
    let il = Interleaver::new(mcs.modulation);
    let ncbps = il.block_len();
    let mut coded = Vec::with_capacity(symbols.len() * ncbps);
    let mut weights = Vec::with_capacity(symbols.len() * ncbps);
    // Per-position weights repeat every symbol; compute once.
    let w_of: Vec<u32> = (0..ncbps)
        .map(|k| profile.weight_at(il.subcarrier_of(k), bt_subcarrier))
        .collect();
    for sym in symbols {
        let mut interleaved = Vec::with_capacity(ncbps);
        for p in &sym.points {
            interleaved.extend(demap_point(mcs.modulation, *p));
        }
        let block = il.deinterleave(&interleaved);
        coded.extend_from_slice(&block);
        weights.extend_from_slice(&w_of);
    }
    (coded, weights)
}

/// How to reverse the FEC encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeStrategy {
    /// Weighted Viterbi at rate 5/6 (MCS 7) — best quality, O(T·64).
    WeightedViterbi,
    /// The O(T) exact-constraint solver at rate 2/3 (MCS 5) — real-time.
    Realtime,
}

impl DecodeStrategy {
    /// The MCS this strategy drives the chip at.
    pub fn mcs(self) -> Mcs {
        match self {
            DecodeStrategy::WeightedViterbi => Mcs::bluefi_viterbi(),
            DecodeStrategy::Realtime => Mcs::bluefi_realtime(),
        }
    }
}

/// Result of the FEC reversal.
#[derive(Debug, Clone, Default)]
pub struct Reversal {
    /// The scrambled data bits that the chip must be fed (before
    /// descrambling).
    pub scrambled: Vec<bool>,
    /// Transmitted coded-bit positions where re-encoding differs from the
    /// target waveform's bits.
    pub flips: Vec<usize>,
}

/// Reverses the encoder: finds data bits whose encoding approximates the
/// target coded stream, avoiding flips on high-weight bits.
pub fn reverse_fec(
    coded: &[bool],
    weights: &[u32],
    strategy: DecodeStrategy,
    bt_subcarrier: f64,
) -> Reversal {
    match strategy {
        DecodeStrategy::WeightedViterbi => {
            telemetry::incr(Counter::ViterbiDecodes);
            telemetry::add(Counter::ViterbiCodedBits, coded.len() as u64);
            let rate = CodeRate::R56;
            let decoded = decode_punctured(rate, coded, Some(weights), false);
            let flips = reencode_flips(rate, &decoded, coded);
            Reversal { scrambled: decoded, flips }
        }
        DecodeStrategy::Realtime => {
            telemetry::incr(Counter::RealtimeDecodes);
            // Positive Bluetooth offsets protect the positive half of the
            // band (flips confined to negative subcarriers) and vice versa.
            let edge = if bt_subcarrier >= 0.0 {
                FreeEdge::Front
            } else {
                FreeEdge::Back
            };
            let out = realtime_plan(coded.len(), edge).decode(coded);
            Reversal { scrambled: out.decoded, flips: out.flips }
        }
    }
}

/// Scratch-buffer variant of [`reverse_fec`]: decodes through `vit` and
/// writes the result into `out`. Both strategies are allocation-free at
/// steady state: the weighted-Viterbi path runs the bit-packed engine
/// (with a repeat-decode memo for identical payloads), and the real-time
/// path replays the interned elimination plan through the scratch's
/// embedded buffers.
pub fn reverse_fec_with(
    coded: &[bool],
    weights: &[u32],
    strategy: DecodeStrategy,
    bt_subcarrier: f64,
    vit: &mut ViterbiScratch,
    out: &mut Reversal,
) {
    match strategy {
        DecodeStrategy::WeightedViterbi => {
            telemetry::incr(Counter::ViterbiDecodes);
            telemetry::add(Counter::ViterbiCodedBits, coded.len() as u64);
            let rate = CodeRate::R56;
            vit.decode_punctured_into(rate, coded, Some(weights), false, &mut out.scrambled);
            if vit.last_decode_memoized() {
                telemetry::incr(Counter::ViterbiMemoHits);
            }
            vit.reencode_flips_into(rate, &out.scrambled, coded, &mut out.flips);
        }
        DecodeStrategy::Realtime => {
            telemetry::incr(Counter::RealtimeDecodes);
            let edge = if bt_subcarrier >= 0.0 {
                FreeEdge::Front
            } else {
                FreeEdge::Back
            };
            let plan = realtime_plan(coded.len(), edge);
            plan.decode_into(coded, vit.realtime_scratch(), &mut out.scrambled, &mut out.flips);
        }
    }
}

/// Forces the scrambled-bit positions BlueFi does not control — the 16-bit
/// SERVICE field, the 6 tail bits and trailing pad — to the values the chip
/// will actually produce, and extracts the PSDU.
///
/// Returns `(psdu_bytes, n_forced_bits)`.
pub fn extract_psdu(scrambled: &mut [bool], seed: u8) -> (Vec<u8>, usize) {
    let mut psdu = Vec::new();
    let forced = extract_psdu_into(scrambled, seed, &mut psdu);
    (psdu, forced)
}

/// Scratch-buffer variant of [`extract_psdu`]: packs the descrambled PSDU
/// into `psdu` (resized to the byte count), allocating only when it must
/// grow. Returns the number of forced bits.
pub fn extract_psdu_into(scrambled: &mut [bool], seed: u8, psdu: &mut Vec<u8>) -> usize {
    let total = scrambled.len();
    assert!(total > 22, "need at least SERVICE + tail");
    let psdu_bits = (total - 16 - 6) / 8 * 8;
    let tail_start = 16 + psdu_bits;

    // The scrambler sequence (SERVICE and pad are zeros, so their scrambled
    // value IS the sequence; tail is forced to zero post-scrambling).
    let mut lfsr = Lfsr7::new(seed);
    let mut forced = 0;
    for (i, s) in scrambled.iter_mut().enumerate() {
        let seq = lfsr.next_bit();
        let forced_value = if i < 16 {
            Some(seq) // scrambled SERVICE zeros
        } else if (tail_start..tail_start + 6).contains(&i) {
            Some(false) // tail bits zeroed after scrambling
        } else if i >= tail_start + 6 {
            Some(seq) // scrambled pad zeros
        } else {
            None
        };
        if let Some(v) = forced_value {
            if *s != v {
                forced += 1;
                *s = v;
            }
        }
    }

    // Descramble the PSDU region and pack LSB-first in one streaming pass.
    // Descrambling = XOR with the same sequence; regenerate it aligned to
    // position 0 and skip the SERVICE field's 16 bits.
    let mut lfsr = Lfsr7::new(seed);
    for _ in 0..16 {
        lfsr.next_bit();
    }
    bluefi_dsp::contracts::ensure_len(psdu, psdu_bits / 8, 0u8);
    for (byte_i, slot) in psdu.iter_mut().enumerate() {
        let mut b = 0u8;
        for bit in 0..8 {
            if scrambled[16 + byte_i * 8 + bit] ^ lfsr.next_bit() {
                b |= 1 << bit;
            }
        }
        *slot = b;
    }
    if bluefi_dsp::contracts::enabled() && psdu_bits >= 8 {
        // Stage contract: the streaming pack must agree with a re-derivation
        // of the first byte (stack-only — the probe must stay quiet here).
        let mut lfsr = Lfsr7::new(seed);
        for _ in 0..16 {
            lfsr.next_bit();
        }
        let mut reference = 0u8;
        for bit in 0..8 {
            if scrambled[16 + bit] ^ lfsr.next_bit() {
                reference |= 1 << bit;
            }
        }
        bluefi_dsp::contract!(
            psdu[0] == reference,
            "extract_psdu_into: streaming pack disagrees with reference"
        );
    }
    forced
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_wifi::tx::{coded_bits, scrambled_bits};

    #[test]
    fn weight_profile_matches_table1() {
        let p = WeightProfile::default();
        // Paper Table 1, BT spectrum on subcarriers 9..16 (center 12.5):
        let bt = 12.5;
        assert_eq!(p.weight_at(-28, bt), 1); // bit 0
        assert_eq!(p.weight_at(-24, bt), 1); // bit 1
        assert_eq!(p.weight_at(3, bt), 1); // bit 7
        assert_eq!(p.weight_at(8, bt), 100); // bit 8
        assert_eq!(p.weight_at(12, bt), 1000); // bit 9
        assert_eq!(p.weight_at(16, bt), 1000); // bit 10
        assert_eq!(p.weight_at(20, bt), 100); // bit 11
        assert_eq!(p.weight_at(25, bt), 1); // bit 12
    }

    #[test]
    fn roundtrip_a_real_codeword() {
        // Encode a PSDU with the real TX chain, demap via QuantizedSymbol
        // stand-ins, and reverse: the decoded scrambled bits must re-encode
        // with zero flips.
        let mcs = Mcs::bluefi_viterbi();
        let psdu = vec![0x5Au8; 61]; // 16+488+6=510 -> 2 symbols (520)
        let scrambled = scrambled_bits(&psdu, 71, mcs);
        let coded = coded_bits(&scrambled, mcs);
        let weights = vec![1u32; coded.len()];
        let rev = reverse_fec(&coded, &weights, DecodeStrategy::WeightedViterbi, 12.0);
        assert!(rev.flips.is_empty(), "flips: {:?}", rev.flips);
        assert_eq!(rev.scrambled, scrambled);
    }

    #[test]
    fn extract_psdu_roundtrip() {
        // 62 bytes is the maximal PSDU for two MCS7 symbols
        // (16 + 496 + 6 = 518 of 520 bits), matching extract_psdu's
        // choose-the-largest convention.
        let mcs = Mcs::bluefi_viterbi();
        let psdu: Vec<u8> = (0..62).map(|i| (i * 7 + 1) as u8).collect();
        let mut scrambled = scrambled_bits(&psdu, 71, mcs);
        let (got, forced) = extract_psdu(&mut scrambled, 71);
        assert_eq!(forced, 0, "a genuine chip stream needs no forcing");
        assert_eq!(&got[..psdu.len()], &psdu[..]);
    }

    #[test]
    fn forced_bits_are_counted() {
        let mcs = Mcs::bluefi_viterbi();
        let psdu = vec![0u8; 62];
        let mut scrambled = scrambled_bits(&psdu, 71, mcs);
        // Corrupt the SERVICE field and one tail bit.
        scrambled[0] = !scrambled[0];
        scrambled[3] = !scrambled[3];
        let tail_start = 16 + 496;
        scrambled[tail_start + 2] = !scrambled[tail_start + 2];
        let (_, forced) = extract_psdu(&mut scrambled, 71);
        assert_eq!(forced, 3);
    }

    #[test]
    fn realtime_reversal_confines_flips() {
        let mcs = Mcs::bluefi_realtime();
        // A non-codeword target: just pseudo-random coded bits.
        let n = mcs.coded_bits_per_symbol() * 4;
        let coded: Vec<bool> = (0..n).map(|i| (i * 2654435761usize) % 97 < 48).collect();
        let weights = vec![1u32; n];
        let rev = reverse_fec(&coded, &weights, DecodeStrategy::Realtime, 12.0);
        for &f in &rev.flips {
            assert!(f % 13 <= 4, "flip at cycle position {}", f % 13);
        }
        // Negative offset: flips on the other side.
        let rev = reverse_fec(&coded, &weights, DecodeStrategy::Realtime, -12.0);
        for &f in &rev.flips {
            if f >= 39 {
                assert!(f % 13 >= 8, "flip at cycle position {}", f % 13);
            }
        }
    }

    #[test]
    fn coded_stream_demaps_what_tx_mapped() {
        use crate::qam::QuantizedSymbol;
        use bluefi_wifi::tx::symbol_spectrum;
        // Build a spectrum with the real TX path, read back its data
        // points, and check coded_stream inverts interleaving+mapping.
        let mcs = Mcs::bluefi_viterbi();
        let coded: Vec<bool> = (0..312).map(|i| i % 7 < 3).collect();
        let spec = symbol_spectrum(&coded, mcs, 0);
        let points: Vec<_> = bluefi_wifi::subcarriers::data_subcarriers()
            .iter()
            .map(|&sc| spec[bluefi_dsp::fft::bin_of_subcarrier(sc, 64)])
            .collect();
        let sym = QuantizedSymbol {
            points,
            scale: 1.0,
            residue: 0.0,
            energy: 1.0,
            per_subcarrier: vec![(0.0, 0.0); 52],
        };
        let (got, weights) = coded_stream(&[sym], mcs, 12.5, &WeightProfile::default());
        assert_eq!(got, coded);
        assert_eq!(weights.len(), 312);
        // Table 1 weights ride along in coded-bit order.
        assert_eq!(weights[9], 1000);
        assert_eq!(weights[8], 100);
        assert_eq!(weights[0], 1);
    }
}
