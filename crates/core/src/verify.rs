//! Forward verification: run a synthesized PSDU through the *actual*
//! 802.11n transmit chain and a COTS-style Bluetooth receiver, with no
//! channel between them. This is the closed loop that proves the reversal
//! worked — the in-lab equivalent of holding the phone next to the router.

use crate::pipeline::Synthesis;
use bluefi_bt::receiver::{BleRx, GfskReceiver, ReceiverConfig};
use bluefi_dsp::bits::u64_to_bits_lsb;
use bluefi_wifi::chip::ChipModel;
use bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ;

/// Transmits `syn` on `chip` and returns the 20 Msps baseband IQ of the
/// whole PPDU at `tx_dbm`.
pub fn transmit(syn: &Synthesis, chip: &ChipModel, tx_dbm: f64) -> bluefi_wifi::Ppdu {
    chip.transmit_with_seed(&syn.psdu, syn.mcs, tx_dbm, syn.seed)
}

/// A receiver tuned to the synthesis' *true* Bluetooth channel (a real
/// phone does not know about the integer-subcarrier snapping; the ≤ 62.5 kHz
/// offset is within the spec's carrier tolerance and the receiver's CFO
/// tracking).
pub fn tuned_receiver(syn: &Synthesis) -> GfskReceiver {
    GfskReceiver::new(ReceiverConfig {
        channel_offset_hz: syn.plan.subcarrier * SUBCARRIER_SPACING_HZ,
        ..Default::default()
    })
}

/// End-to-end loopback for a BLE advertising synthesis: synthesize → chip
/// TX → receiver decode on `ble_channel`.
pub fn loopback_ble(syn: &Synthesis, chip: &ChipModel, ble_channel: u8) -> BleRx {
    let ppdu = transmit(syn, chip, chip.default_tx_dbm);
    tuned_receiver(syn).receive_ble_adv(&ppdu.iq, ble_channel)
}

/// Loopback bit-error count against the intended air bits: transmit,
/// synchronize on the BLE access address, and compare the sliced payload
/// bits with the ground truth. Returns `None` when synchronization fails.
pub fn loopback_ble_bit_errors(
    syn: &Synthesis,
    chip: &ChipModel,
    air_bits: &[bool],
) -> Option<(usize, usize)> {
    let ppdu = transmit(syn, chip, chip.default_tx_dbm);
    let rx = tuned_receiver(syn);
    let demod = rx.demodulate(&ppdu.iq);
    let aa = u64_to_bits_lsb(bluefi_bt::ble::ADV_ACCESS_ADDRESS as u64, 32);
    let hit = rx.synchronize(&demod, &aa, air_bits.len())?;
    let truth = &air_bits[40..]; // skip preamble + AA
    let n = truth.len().min(hit.bits.len());
    let errs = truth[..n].iter().zip(&hit.bits[..n]).filter(|(a, b)| a != b).count();
    Some((errs, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::BlueFi;
    use crate::reversal::DecodeStrategy;
    use bluefi_bt::ble::{adv_air_bits, AdvDecode, AdvPdu, AdvPduType};

    fn pdu(variant: u8) -> AdvPdu {
        AdvPdu {
            pdu_type: AdvPduType::AdvNonconnInd,
            adv_address: [0x11, 0x22, 0x33, 0x44, 0x55, variant],
            adv_data: (0..12).map(|i| i * 7 ^ variant).collect(),
            tx_add: false,
        }
    }

    /// Runs loopbacks over several payloads; returns (ok_count, total_ber).
    fn loopback_stats(bf: &BlueFi, chip: &ChipModel, n: u8) -> (usize, f64) {
        let mut ok = 0;
        let mut errs = 0usize;
        let mut bits_total = 0usize;
        for v in 0..n {
            let air = adv_air_bits(&pdu(v), 38);
            let syn = bf.synthesize(&air, 2.426e9, 71).unwrap();
            if loopback_ble(&syn, chip, 38).ok() {
                ok += 1;
            }
            if let Some((e, t)) = loopback_ble_bit_errors(&syn, chip, &air) {
                errs += e;
                bits_total += t;
            } else {
                errs += 50;
                bits_total += 100;
            }
        }
        (ok, errs as f64 / bits_total.max(1) as f64)
    }

    #[test]
    fn viterbi_loopback_on_ar9331_has_low_ber() {
        // The simulated receiver's discriminator is simpler than real
        // silicon, leaving a small residual BER on BlueFi waveforms; the
        // loop must synchronize every packet, decode a good fraction fully,
        // and stay under 1.5% payload BER.
        let (ok, ber) = loopback_stats(&BlueFi::default(), &ChipModel::ar9331(), 6);
        assert!(ber < 0.015, "payload BER {ber}");
        assert!(ok >= 2, "only {ok}/6 packets fully decoded");
    }

    #[test]
    fn viterbi_loopback_on_rtl8811au_has_low_ber() {
        let (ok, ber) = loopback_stats(&BlueFi::default(), &ChipModel::rtl8811au(), 6);
        assert!(ber < 0.015, "payload BER {ber}");
        assert!(ok >= 2, "only {ok}/6 packets fully decoded");
    }

    #[test]
    fn realtime_loopback_has_low_ber() {
        let bf = BlueFi { strategy: DecodeStrategy::Realtime, ..Default::default() };
        let (ok, ber) = loopback_stats(&bf, &ChipModel::rtl8811au(), 6);
        assert!(ber < 0.02, "payload BER {ber}");
        assert!(ok >= 1, "only {ok}/6 packets fully decoded");
    }

    #[test]
    fn wrong_seed_breaks_the_packet() {
        // Synthesize for seed 1 but let the chip scramble with seed 2: the
        // waveform decorrelates and the Bluetooth receiver must not decode.
        let bf = BlueFi::default();
        let bits = adv_air_bits(&pdu(0), 38);
        let syn = bf.synthesize(&bits, 2.426e9, 1).unwrap();
        let chip = ChipModel::ar9331();
        let ppdu = chip.transmit_with_seed(&syn.psdu, syn.mcs, 18.0, 2);
        let out = tuned_receiver(&syn).receive_ble_adv(&ppdu.iq, 38);
        assert!(!out.ok(), "decoded despite wrong scrambler seed");
    }

    #[test]
    fn decode_outcome_is_ok_or_crc_never_garbage() {
        // Every synchronized decode must be a structured outcome.
        let bf = BlueFi::default();
        for v in 0..4u8 {
            let bits = adv_air_bits(&pdu(v), 38);
            let syn = bf.synthesize(&bits, 2.426e9, 71).unwrap();
            let out = loopback_ble(&syn, &ChipModel::ar9331(), 38);
            match out.decode {
                Some(AdvDecode::Ok(got)) => assert_eq!(got, pdu(v)),
                Some(AdvDecode::CrcError) | Some(AdvDecode::HeaderError) => {}
                None => panic!("no synchronization for variant {v}"),
            }
        }
    }

    #[test]
    fn rssi_is_reported() {
        let bf = BlueFi::default();
        let bits = adv_air_bits(&pdu(0), 38);
        let syn = bf.synthesize(&bits, 2.426e9, 1).unwrap();
        let ppdu = transmit(&syn, &ChipModel::ar9331(), 18.0);
        let rx = tuned_receiver(&syn);
        let out = rx.receive_ble_adv(&ppdu.iq, 38);
        let rssi = out.rssi_dbm.expect("synchronized");
        // 18 dBm total WiFi power; the BT band captures a slice of it.
        assert!(rssi > -20.0 && rssi < 25.0, "rssi {rssi}");
    }
}
