//! Template cache + delta synthesis for beacon fleets.
//!
//! The production workload (paper Sec 5, "millions of users") is fleets of
//! APs emitting near-identical BLE advertising beacons: one base payload
//! per (channel, seed, length) with small per-packet mutations — counters,
//! TX-power fields, rotating addresses. A full resynthesis spends
//! milliseconds per packet on work whose inputs did not change. This module
//! caches the first synthesis of each key as a **template** and services
//! subsequent mutated payloads with a **patch** that recomputes only what
//! the mutation touched, bit-exactly.
//!
//! ## Why patching is exact
//!
//! Every stage the patch path skips or splices is either *local* or
//! *GF(2)-linear with bounded memory*:
//!
//! * **Phase** — the anchored evaluator ([`bluefi_bt::anchored`]) computes
//!   each sample as a closed-form function of an integer residue and a
//!   ±3-symbol pulse window, so an unchanged window reproduces the
//!   *identical* `f64`. The patch refills the whole extended phase (a few
//!   microseconds) and finds dirty OFDM symbols by comparing raw bits of
//!   the new and templated phase — a symbol whose 73-sample window matches
//!   is untouched through every later stage, by determinism of the shared
//!   code path.
//! * **CP pocket map, FFT, quantization, demap, deinterleave** — all
//!   per-symbol-local: only dirty symbols are recomputed; clean symbols'
//!   coded bits are copied from the template.
//! * **FEC reversal** — the real-time decoder is a replay of a fixed GF(2)
//!   elimination. [`bluefi_coding::realtime::RealtimePlan::redecode_suffix`]
//!   replays only the rows sourced at or after the first changed coded bit
//!   against a saved checkpoint, returning the first information bit that
//!   can differ; everything below it is copied.
//! * **Descramble/pack** — the scrambler is a fixed LFSR stream (stored in
//!   the template), so untouched PSDU bytes are copied and the suffix is
//!   re-XORed; the forced-bit census is recounted in ~30 operations.
//!
//! ## Store
//!
//! [`TemplateStore`] is sharded by key hash over a fixed array of
//! `Mutex<Shard>` (no global lock), capacity-bounded in bytes with
//! CLOCK-style second-chance eviction per shard, and instrumented with
//! hit/miss/evict/bytes-resident telemetry. Templates are `Arc`-shared:
//! `get` clones a handle under the shard lock and the patch runs outside
//! it, so concurrent workers never serialize on synthesis.
//!
//! ## Eligibility
//!
//! Patching requires the deterministic closed-form pipeline:
//! [`DecodeStrategy::Realtime`], [`PhaseMode::Anchored`] (with GFSK
//! parameters the anchored decomposition accepts), and the paper's
//! [`PocketMode::PaperSplit`] CP construction. Any other configuration is
//! counted as a bypass and delegated to the cold engine unchanged.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::cp::PocketMode;
use crate::pipeline::{BlueFi, PhaseMode, Synthesis, SynthesisScratch};
use crate::reversal::DecodeStrategy;
use crate::telemetry::{self, Counter, Gauge, SpanKind};
use bluefi_coding::lfsr::Lfsr7;
use bluefi_coding::realtime::{realtime_plan, FreeEdge, RealtimeCheckpoint};
use bluefi_wifi::channels::ChannelPlan;
use bluefi_wifi::qam::demap_point_into;
use bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ;

/// Number of store shards (fixed; key hash selects one).
const SHARD_COUNT: usize = 16;

/// Default store capacity: 64 MiB ≈ a few hundred beacon templates.
pub const DEFAULT_CAPACITY_BYTES: usize = 64 * 1024 * 1024;

/// The identity of one cached synthesis: everything that selects a distinct
/// digital chain besides the payload bits themselves. Payloads of equal
/// length on the same (plan, seed) share a template regardless of content —
/// that is the whole point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TemplateKey {
    wifi_channel: u8,
    subcarrier_bits: u64,
    tx_subcarrier_bits: u64,
    clearance_bits: u64,
    seed: u8,
    n_bits: usize,
}

impl TemplateKey {
    /// The key for a (plan, seed, payload-length) request.
    pub fn new(plan: &ChannelPlan, seed: u8, n_bits: usize) -> TemplateKey {
        TemplateKey {
            wifi_channel: plan.wifi_channel,
            subcarrier_bits: plan.subcarrier.to_bits(),
            tx_subcarrier_bits: plan.tx_subcarrier.to_bits(),
            clearance_bits: plan.clearance.to_bits(),
            seed,
            n_bits,
        }
    }

    fn shard(&self) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % SHARD_COUNT
    }
}

/// One cached base synthesis: the stage outputs the patch path splices
/// from, plus the base result itself.
#[derive(Debug)]
pub struct Template {
    /// The base payload bits (locates the first mutated bit, which bounds
    /// the phase suffix that needs refilling).
    bits: Vec<bool>,
    /// Anchored extended phase of the base payload (dirty detection +
    /// clean-symbol reuse).
    theta_ext: Vec<f64>,
    /// Full base coded stream (clean symbols' bits are copied from here).
    coded: Vec<bool>,
    /// Per-symbol in-band quantization error, in pipeline order (the mean
    /// is re-summed with patched entries substituted, preserving the cold
    /// path's addition order exactly).
    errs: Vec<f64>,
    /// Saved real-time decode state of `coded` (pre-forcing).
    ckpt: RealtimeCheckpoint,
    /// Base flip list (the suffix re-encode splices after these).
    flips: Vec<usize>,
    /// The scrambler sequence for `seed`, one bit per scrambled position.
    seq: Vec<bool>,
    /// Which interleaver-cycle edge the decode sacrifices (from the plan's
    /// subcarrier sign; Back-edge templates use an assisted full replay).
    edge: FreeEdge,
    /// The base synthesis (metadata + PSDU prefix source).
    base: Synthesis,
}

impl Template {
    /// Approximate heap footprint, in bytes (the store's budget unit).
    pub fn bytes(&self) -> usize {
        std::mem::size_of::<Template>()
            + self.bits.capacity()
            + self.theta_ext.capacity() * 8
            + self.coded.capacity()
            + self.errs.capacity() * 8
            + self.ckpt.bytes()
            + self.flips.capacity() * 8
            + self.seq.capacity()
            + self.base.psdu.capacity()
            + self.base.flips.capacity() * 8
    }
}

#[derive(Debug)]
struct ShardEntry {
    key: TemplateKey,
    tpl: Arc<Template>,
    bytes: usize,
    referenced: bool,
}

#[derive(Debug, Default)]
struct Shard {
    entries: Vec<ShardEntry>,
    hand: usize,
    resident: usize,
}

/// A sharded, capacity-bounded template store with CLOCK eviction.
///
/// Keys hash to one of [`SHARD_COUNT`] independent `Mutex<Shard>`s; the
/// byte budget is divided evenly across shards. Each `get` grants the
/// entry a second chance; eviction sweeps the clock hand, clearing
/// reference bits until it finds an unreferenced victim. A template larger
/// than a whole shard budget is still admitted (the shard transiently
/// overshoots) so a pathological capacity cannot wedge the engine.
#[derive(Debug)]
pub struct TemplateStore {
    shards: [Mutex<Shard>; SHARD_COUNT],
    shard_budget: usize,
    resident: AtomicU64,
}

impl TemplateStore {
    /// A store bounded to roughly `capacity_bytes` across all shards.
    pub fn new(capacity_bytes: usize) -> TemplateStore {
        TemplateStore {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            shard_budget: (capacity_bytes / SHARD_COUNT).max(1),
            resident: AtomicU64::new(0),
        }
    }

    /// Fetches the template for `key`, marking it recently used.
    pub fn get(&self, key: &TemplateKey) -> Option<Arc<Template>> {
        let mut shard = self.lock_shard(key.shard());
        let e = shard.entries.iter_mut().find(|e| e.key == *key)?;
        e.referenced = true;
        Some(Arc::clone(&e.tpl))
    }

    /// Inserts (or replaces) the template for `key`, evicting
    /// least-recently-referenced entries from the key's shard until the
    /// shard fits its budget.
    pub fn insert(&self, key: TemplateKey, tpl: Arc<Template>) {
        let bytes = tpl.bytes();
        let mut shard = self.lock_shard(key.shard());
        if let Some(i) = shard.entries.iter().position(|e| e.key == key) {
            let old = shard.entries.swap_remove(i);
            shard.resident -= old.bytes;
            self.resident.fetch_sub(old.bytes as u64, Ordering::Relaxed);
        }
        // CLOCK sweep: clear reference bits until an unreferenced victim
        // turns up. Terminates because a full revolution clears every bit.
        while shard.resident + bytes > self.shard_budget && !shard.entries.is_empty() {
            if shard.hand >= shard.entries.len() {
                shard.hand = 0;
            }
            let hand = shard.hand;
            if shard.entries[hand].referenced {
                shard.entries[hand].referenced = false;
                shard.hand += 1;
            } else {
                // swap_remove moves the tail entry into the hand slot, so
                // the hand stays put for the next inspection.
                let victim = shard.entries.swap_remove(hand);
                shard.resident -= victim.bytes;
                self.resident.fetch_sub(victim.bytes as u64, Ordering::Relaxed);
                telemetry::incr(Counter::TemplateEvict);
            }
        }
        shard.resident += bytes;
        self.resident.fetch_add(bytes as u64, Ordering::Relaxed);
        shard.entries.push(ShardEntry { key, tpl, bytes, referenced: true });
        telemetry::gauge_set(
            Gauge::TemplateBytesResident,
            self.resident.load(Ordering::Relaxed),
        );
    }

    /// Total bytes currently resident across all shards.
    pub fn bytes_resident(&self) -> usize {
        self.resident.load(Ordering::Relaxed) as usize
    }

    /// Number of templates currently resident.
    pub fn len(&self) -> usize {
        (0..SHARD_COUNT).map(|i| self.lock_shard(i).entries.len()).sum()
    }

    /// Whether the store holds no templates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock_shard(&self, i: usize) -> std::sync::MutexGuard<'_, Shard> {
        // A poisoned shard only means a panic mid-update elsewhere; the
        // entries are structurally sound, so recover rather than propagate.
        self.shards[i].lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl Default for TemplateStore {
    fn default() -> TemplateStore {
        TemplateStore::new(DEFAULT_CAPACITY_BYTES)
    }
}

/// Per-worker buffers for [`CachedEngine`]: wraps a [`SynthesisScratch`]
/// (the miss path runs the cold pipeline through it; the hit path reuses
/// its buffers for the patch). One per thread, never shared; after warmup
/// a cache-hit packet performs zero heap allocations.
#[derive(Debug, Default)]
pub struct CachedScratch {
    inner: SynthesisScratch,
}

impl CachedScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> CachedScratch {
        CachedScratch::default()
    }
}

/// The caching front end over [`BlueFi::synthesize_at_with`]: first
/// synthesis of a [`TemplateKey`] runs the cold pipeline and captures a
/// [`Template`]; later requests with the same key patch only what their
/// payload mutation touched. See the module docs for the exactness
/// argument.
#[derive(Debug)]
pub struct CachedEngine {
    bf: BlueFi,
    store: TemplateStore,
}

impl CachedEngine {
    /// An engine over `bf` with the default store capacity.
    pub fn new(bf: BlueFi) -> CachedEngine {
        CachedEngine::with_capacity(bf, DEFAULT_CAPACITY_BYTES)
    }

    /// An engine over `bf` with an explicit store capacity in bytes.
    pub fn with_capacity(bf: BlueFi, capacity_bytes: usize) -> CachedEngine {
        CachedEngine { bf, store: TemplateStore::new(capacity_bytes) }
    }

    /// The synthesis configuration this engine serves.
    pub fn config(&self) -> &BlueFi {
        &self.bf
    }

    /// The template store (for stats and tests).
    pub fn store(&self) -> &TemplateStore {
        &self.store
    }

    /// Whether requests can be served from templates at all: the
    /// deterministic closed-form pipeline must be selected. Requests on an
    /// ineligible engine are counted as bypasses and delegated unchanged.
    pub fn cache_eligible(&self, scratch: &mut CachedScratch) -> bool {
        matches!(self.bf.strategy, DecodeStrategy::Realtime)
            && self.bf.phase == PhaseMode::Anchored
            && self.bf.cp.pocket == PocketMode::PaperSplit
            && scratch.inner.anchored_for(&self.bf.gfsk).is_some()
    }

    /// Cached synthesis: bit-exact equal to
    /// `self.config().synthesize_at_with(..)` for every field of the
    /// result, whether it was served cold, built, or patched.
    pub fn synthesize_at_with<'s>(
        &self,
        bt_bits: &[bool],
        plan: ChannelPlan,
        seed: u8,
        scratch: &'s mut CachedScratch,
    ) -> &'s Synthesis {
        if !self.cache_eligible(scratch) {
            telemetry::incr(Counter::TemplateBypass);
            return self.bf.synthesize_at_with(bt_bits, plan, seed, &mut scratch.inner);
        }
        let key = TemplateKey::new(&plan, seed, bt_bits.len());
        if let Some(tpl) = self.store.get(&key) {
            telemetry::incr(Counter::TemplateHit);
            return self.patch(&tpl, bt_bits, plan, seed, &mut scratch.inner);
        }
        telemetry::incr(Counter::TemplateMiss);
        // Build outside any shard lock: concurrent first-users of one key
        // may race to build, but insert is idempotent (last write wins) and
        // every build is bit-identical.
        let tpl = self.build(bt_bits, plan, seed, &mut scratch.inner);
        self.store.insert(key, tpl);
        // lint: allow(panic) build ran the cold pipeline, which always stores a result
        scratch.inner.result.as_ref().unwrap()
    }

    /// Allocating convenience shim over [`CachedEngine::synthesize_at_with`].
    pub fn synthesize_at(&self, bt_bits: &[bool], plan: ChannelPlan, seed: u8) -> Synthesis {
        let mut scratch = CachedScratch::new();
        self.synthesize_at_with(bt_bits, plan, seed, &mut scratch);
        // lint: allow(panic) synthesize_at_with always stores a result
        scratch.inner.result.take().unwrap()
    }

    /// Miss path: run the cold pipeline, then capture everything the patch
    /// path will splice from. The extra capture work (a re-decode for the
    /// pre-forcing checkpoint, a re-quantization for per-symbol errors)
    /// costs about one more cold synthesis — paid once per key.
    fn build(
        &self,
        bt_bits: &[bool],
        plan: ChannelPlan,
        seed: u8,
        s: &mut SynthesisScratch,
    ) -> Arc<Template> {
        // The build span encloses the cold synthesis, so a miss packet's
        // causal trace roots at `template_build` with the five pipeline
        // phases (under `synthesize`) as descendants.
        let _sp = telemetry::span(SpanKind::TemplateBuild);
        self.bf.synthesize_at_with(bt_bits, plan, seed, s);
        // lint: allow(panic) the cold pipeline always stores a result
        let base = s.result.as_ref().unwrap().clone();
        let n_symbols = base.n_symbols;
        let mcs = base.mcs;
        let edge =
            if plan.tx_subcarrier >= 0.0 { FreeEdge::Front } else { FreeEdge::Back };

        // Re-decode the coded stream to capture the PRE-forcing information
        // bits (extract_psdu_into forced SERVICE/tail/pad in-place in
        // s.rev.scrambled, so that buffer is no longer the raw decode).
        let rt_plan = realtime_plan(s.coded.len(), edge);
        let mut decoded = Vec::new();
        let mut flips = Vec::new();
        rt_plan.decode_into(&s.coded, s.vit.realtime_scratch(), &mut decoded, &mut flips);
        debug_assert_eq!(flips, base.flips, "re-decode must reproduce the base flips");
        let mut ckpt = RealtimeCheckpoint::new();
        rt_plan.save_checkpoint(s.vit.realtime_scratch(), &decoded, &mut ckpt);

        // Per-symbol quantization errors, in pipeline order.
        let bl = self.bf.cp.block_len();
        s.quantizer_for(mcs.modulation, self.bf.scale);
        // lint: allow(panic) quantizer_for above guarantees Some
        let quantizer = &s.quantizer.as_ref().unwrap().2;
        let mut errs = Vec::with_capacity(n_symbols);
        for b in 0..n_symbols {
            let body = &s.theta_hat[b * bl + self.bf.cp.cp_len..(b + 1) * bl];
            quantizer.quantize_body_into(body, &mut s.fft_buf, &mut s.sym);
            errs.push(s.sym.in_band_error_db(plan.tx_subcarrier, self.bf.weights.band));
        }

        // The scrambler sequence for every scrambled position.
        let mut lfsr = Lfsr7::new(seed);
        let mut seq = Vec::with_capacity(decoded.len());
        for _ in 0..decoded.len() {
            seq.push(lfsr.next_bit());
        }

        Arc::new(Template {
            bits: bt_bits.to_vec(),
            theta_ext: s.theta_ext.clone(),
            coded: s.coded.clone(),
            errs,
            ckpt,
            flips,
            seq,
            edge,
            base,
        })
    }

    /// Hit path: recompute only what the payload mutation touched. Each
    /// step reuses the exact cold-path code on identical inputs, so every
    /// untouched intermediate is the identical `f64`/bit and the result is
    /// word-for-word equal to a full resynthesis.
    fn patch<'s>(
        &self,
        tpl: &Template,
        bt_bits: &[bool],
        plan: ChannelPlan,
        seed: u8,
        s: &'s mut SynthesisScratch,
    ) -> &'s Synthesis {
        let _sp = telemetry::span(SpanKind::TemplatePatch);
        let offset_cps =
            plan.tx_subcarrier * SUBCARRIER_SPACING_HZ / self.bf.gfsk.sample_rate_hz;

        // Trace-only sub-stage spans reuse the pipeline-phase kinds so a
        // patched packet's causal trace shows the same five-phase shape as
        // a cold one — without feeding the aggregate phase histograms
        // (patch stages are orders of magnitude cheaper and would distort
        // the per-stage statistics).
        let sp_splice = telemetry::trace_span(SpanKind::Gfsk);

        // 1. Splice the extended phase: every sample before the first
        // mutated bit's pulse window is copied from the base fill (it is
        // float-identical by the anchored closed form), and only the
        // suffix is re-evaluated.
        let ext_len = tpl.theta_ext.len();
        let first_diff = bt_bits.iter().zip(&tpl.bits).position(|(a, b)| a != b);
        let mut theta_ext = std::mem::take(&mut s.theta_ext);
        let filled = match s.anchored_for(&self.bf.gfsk) {
            Some(am) => {
                let t_fill = match first_diff {
                    Some(d) => am.first_sample_of_bit(d).min(ext_len),
                    None => ext_len, // identical payload: pure copy
                };
                bluefi_dsp::contracts::ensure_len(&mut theta_ext, ext_len, 0.0);
                theta_ext[..t_fill].copy_from_slice(&tpl.theta_ext[..t_fill]);
                am.fill_ext_from(bt_bits, offset_cps, t_fill, &mut theta_ext);
                Some(t_fill)
            }
            None => None,
        };
        s.theta_ext = theta_ext;
        let Some(t_fill) = filled else {
            // Unreachable in practice — eligibility pinned the anchored
            // mode — but degrade to the cold engine rather than panic.
            drop(sp_splice);
            telemetry::incr(Counter::TemplateBypass);
            return self.bf.synthesize_at_with(bt_bits, plan, seed, s);
        };

        drop(sp_splice);

        // 2. Pocket map (cheap full pass; identical code path as cold).
        {
            let _sp_pocket = telemetry::trace_span(SpanKind::CpCompat);
            self.bf.cp.pocket_map_into(&s.theta_ext, &mut s.theta_hat);
        }
        let mut sp_requant = telemetry::trace_span(SpanKind::Quantize);

        // 3. Dirty scan + local requantize. OFDM symbol b reads extended
        // phase [b·bl, (b+1)·bl] inclusive (the +1 is the windowing
        // lookahead), so a bit-identical window ⇒ identical symbol.
        let bl = self.bf.cp.block_len();
        let cp_len = self.bf.cp.cp_len;
        let n_symbols = tpl.base.n_symbols;
        let mcs = tpl.base.mcs;
        s.quantizer_for(mcs.modulation, self.bf.scale);
        let il = s.interleaver_for(mcs.modulation);
        let ncbps = il.block_len();
        let bps = mcs.modulation.bits_per_symbol();
        bluefi_dsp::contracts::ensure_len(&mut s.coded, tpl.coded.len(), false);
        s.coded.copy_from_slice(&tpl.coded);
        // lint: allow(panic) quantizer_for above guarantees Some
        let quantizer = &s.quantizer.as_ref().unwrap().2;
        let mut err_sum = 0.0;
        let mut first_dirty: Option<usize> = None;
        let mut dirty_count = 0u64;
        // Symbol b reads phase window [b·bl, (b+1)·bl]; symbols whose
        // window ends before the refill point hold copied samples and are
        // clean by construction — no comparison needed.
        let b_scan = t_fill.div_ceil(bl).saturating_sub(1);
        for b in 0..n_symbols {
            if b < b_scan {
                err_sum += tpl.errs[b];
                continue;
            }
            let w_new = &s.theta_ext[b * bl..=(b + 1) * bl];
            let w_old = &tpl.theta_ext[b * bl..=(b + 1) * bl];
            let dirty = w_new.iter().zip(w_old).any(|(x, y)| x.to_bits() != y.to_bits());
            if dirty {
                first_dirty.get_or_insert(b);
                dirty_count += 1;
                let body = &s.theta_hat[b * bl + cp_len..(b + 1) * bl];
                quantizer.quantize_body_into(body, &mut s.fft_buf, &mut s.sym);
                err_sum += s.sym.in_band_error_db(plan.tx_subcarrier, self.bf.weights.band);
                bluefi_dsp::contracts::ensure_len(&mut s.interleaved, ncbps, false);
                for (d, &p) in s.sym.points.iter().enumerate() {
                    demap_point_into(mcs.modulation, p, &mut s.demap);
                    s.interleaved[d * bps..(d + 1) * bps].copy_from_slice(&s.demap);
                }
                il.deinterleave_into(&s.interleaved, &mut s.block);
                s.coded[b * ncbps..(b + 1) * ncbps].copy_from_slice(&s.block);
            } else {
                err_sum += tpl.errs[b];
            }
        }
        let mean_quant_error_db = err_sum / n_symbols.max(1) as f64;
        sp_requant.set_detail(dirty_count);
        drop(sp_requant);
        let mut sp_fec = telemetry::trace_span(SpanKind::FecReversal);

        // 4. FEC reversal: suffix-incremental for Front-edge plans; Back
        // lacks the prefix structure, so it replays the (still cached) full
        // elimination — slower but identical.
        let n_tx = tpl.coded.len();
        let t_start = first_dirty.map_or(n_tx, |b| b * ncbps);
        let rt_plan = realtime_plan(n_tx, tpl.edge);
        let (mut psdu, mut flips) = match s.result.take() {
            Some(prev) => (prev.psdu, prev.flips),
            None => (Vec::new(), Vec::new()),
        };
        let byte_lo = match tpl.edge {
            FreeEdge::Front => {
                let b_bound = rt_plan.redecode_suffix(
                    &s.coded,
                    t_start,
                    &tpl.ckpt,
                    s.vit.realtime_scratch(),
                    &mut s.rev.scrambled,
                );
                rt_plan.reencode_flips_suffix(
                    &s.rev.scrambled,
                    &s.coded,
                    b_bound,
                    t_start,
                    &tpl.flips,
                    &mut flips,
                );
                ((b_bound.max(16) - 16) / 8).min(tpl.base.psdu.len())
            }
            FreeEdge::Back => {
                rt_plan.decode_into(
                    &s.coded,
                    s.vit.realtime_scratch(),
                    &mut s.rev.scrambled,
                    &mut flips,
                );
                0
            }
        };
        sp_fec.set_detail(rt_plan.replayed_rows_from(match tpl.edge {
            FreeEdge::Front => t_start,
            FreeEdge::Back => 0,
        }) as u64);
        drop(sp_fec);
        let _sp_extract = telemetry::trace_span(SpanKind::Extract);

        // 5. PSDU bytes: prefix copied from the base, suffix re-descrambled
        // with the stored sequence. The PSDU region is never forced, so the
        // raw decode XOR the sequence IS the extract_psdu_into output.
        let decoded = &s.rev.scrambled;
        bluefi_dsp::contracts::ensure_len(&mut psdu, tpl.base.psdu.len(), 0u8);
        psdu[..byte_lo].copy_from_slice(&tpl.base.psdu[..byte_lo]);
        for (byte_i, slot) in psdu.iter_mut().enumerate().skip(byte_lo) {
            let at = 16 + byte_i * 8;
            let mut v = 0u8;
            for bit in 0..8 {
                if decoded[at + bit] ^ tpl.seq[at + bit] {
                    v |= 1 << bit;
                }
            }
            *slot = v;
        }

        // 6. Forced-bit census over the chip-owned regions (≤ 30 positions;
        // same mismatch predicate as extract_psdu_into, order-independent).
        let n_in = decoded.len();
        let psdu_bits = (n_in - 16 - 6) / 8 * 8;
        let tail_start = 16 + psdu_bits;
        let mut forced_bits = 0;
        for i in 0..16 {
            forced_bits += usize::from(decoded[i] != tpl.seq[i]);
        }
        for i in tail_start..tail_start + 6 {
            forced_bits += usize::from(decoded[i]);
        }
        for i in tail_start + 6..n_in {
            forced_bits += usize::from(decoded[i] != tpl.seq[i]);
        }

        telemetry::incr(Counter::PacketsSynthesized);
        telemetry::add(Counter::SymbolsProcessed, dirty_count);
        telemetry::add(Counter::FecFlips, flips.len() as u64);
        telemetry::add(Counter::ForcedBits, forced_bits as u64);

        s.result = Some(Synthesis {
            psdu,
            plan,
            mcs,
            seed,
            n_symbols,
            flips,
            forced_bits,
            mean_quant_error_db,
        });
        // lint: allow(panic) assigned on the line above
        s.result.as_ref().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_bt::ble::{adv_air_bits, AdvPdu, AdvPduType};
    use bluefi_wifi::channels::plan_channel;

    fn fleet_engine() -> CachedEngine {
        CachedEngine::new(BlueFi {
            strategy: DecodeStrategy::Realtime,
            phase: PhaseMode::Anchored,
            ..Default::default()
        })
    }

    fn beacon(counter: u8) -> Vec<bool> {
        let mut data: Vec<u8> = (0..24).collect();
        data[23] = counter;
        let pdu = AdvPdu {
            pdu_type: AdvPduType::AdvNonconnInd,
            adv_address: [0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF],
            adv_data: data,
            tx_add: false,
        };
        adv_air_bits(&pdu, 38)
    }

    #[test]
    fn patch_equals_cold_for_counter_mutations() {
        let engine = fleet_engine();
        let cold = engine.config().clone();
        let plan = plan_channel(2.426e9).unwrap();
        let mut scratch = CachedScratch::new();
        for counter in 0..8u8 {
            let bits = beacon(counter);
            let want = cold.synthesize_at(&bits, plan, 71);
            let got = engine.synthesize_at_with(&bits, plan, 71, &mut scratch);
            assert_eq!(got.psdu, want.psdu, "counter {counter}");
            assert_eq!(got.flips, want.flips, "counter {counter}");
            assert_eq!(got.forced_bits, want.forced_bits, "counter {counter}");
            assert_eq!(got.n_symbols, want.n_symbols);
            assert_eq!(got.mean_quant_error_db.to_bits(), want.mean_quant_error_db.to_bits());
        }
        assert_eq!(telemetry_free_len(&engine), 1, "one template for the whole fleet");
    }

    fn telemetry_free_len(engine: &CachedEngine) -> usize {
        engine.store().len()
    }

    #[test]
    fn patch_equals_cold_on_the_back_edge() {
        // BT channel 24 → 2426 MHz sits below WiFi channel 6's center:
        // negative subcarrier, Back-edge assisted path.
        let engine = fleet_engine();
        let cold = engine.config().clone();
        let plan = plan_channel(2.426e9 + 0.0).unwrap();
        // Force a genuinely negative subcarrier via a pinned plan.
        let plan = ChannelPlan::pinned(plan.wifi_channel, -3.0);
        let mut scratch = CachedScratch::new();
        for counter in [0u8, 9, 200] {
            let bits = beacon(counter);
            let want = cold.synthesize_at(&bits, plan, 1);
            let got = engine.synthesize_at_with(&bits, plan, 1, &mut scratch);
            assert_eq!(got.psdu, want.psdu, "counter {counter}");
            assert_eq!(got.flips, want.flips, "counter {counter}");
            assert_eq!(got.forced_bits, want.forced_bits);
        }
    }

    #[test]
    fn ineligible_configs_bypass_the_cache() {
        // Default (Viterbi + cumulative) config: every request must bypass.
        let engine = CachedEngine::new(BlueFi::default());
        let plan = plan_channel(2.426e9).unwrap();
        let mut scratch = CachedScratch::new();
        let cold = engine.config().clone().synthesize_at(&beacon(0), plan, 71);
        let got = engine.synthesize_at_with(&beacon(0), plan, 71, &mut scratch);
        assert_eq!(got.psdu, cold.psdu);
        assert!(engine.store().is_empty(), "bypass must not populate the store");
    }

    #[test]
    fn store_evicts_under_pressure_and_counts_bytes() {
        let engine = fleet_engine();
        let plan = plan_channel(2.426e9).unwrap();
        // First build to learn the real template size.
        let mut scratch = CachedScratch::new();
        engine.synthesize_at_with(&beacon(0), plan, 71, &mut scratch);
        let one = engine.store().bytes_resident();
        assert!(one > 0);

        // A store that fits ~2 templates per shard: filling many distinct
        // seeds must evict rather than grow without bound.
        let small = CachedEngine::with_capacity(
            engine.config().clone(),
            one * 2 * SHARD_COUNT,
        );
        for seed in 1..=40u8 {
            small.synthesize_at_with(&beacon(0), plan, seed, &mut scratch);
        }
        assert!(
            small.store().bytes_resident() <= one * 3 * SHARD_COUNT,
            "resident {} for one-template size {one}",
            small.store().bytes_resident()
        );
        assert!(small.store().len() < 40, "eviction must have triggered");
    }

    #[test]
    fn hits_return_identical_results_across_scratches() {
        // Two workers with independent scratches, same engine: one misses,
        // one hits — identical output.
        let engine = fleet_engine();
        let plan = plan_channel(2.452e9).unwrap();
        let bits = beacon(3);
        let mut s1 = CachedScratch::new();
        let mut s2 = CachedScratch::new();
        let a = engine.synthesize_at_with(&bits, plan, 71, &mut s1).clone();
        let b = engine.synthesize_at_with(&bits, plan, 71, &mut s2).clone();
        assert_eq!(a.psdu, b.psdu);
        assert_eq!(a.flips, b.flips);
        assert_eq!(a.forced_bits, b.forced_bits);
        assert_eq!(a.mean_quant_error_db.to_bits(), b.mean_quant_error_db.to_bits());
    }
}
