//! The end-to-end BlueFi synthesizer: Bluetooth packet bits in, 802.11n
//! PSDU bytes out (paper Secs 2.2–2.8 and 3).

use crate::cp::CpCompat;
use crate::qam::{Quantizer, ScaleMode, DEFAULT_SCALE};
use crate::reversal::{
    coded_stream, extract_psdu, reverse_fec, DecodeStrategy, WeightProfile,
};
use bluefi_bt::gfsk::{modulate_phase, GfskParams};
use bluefi_wifi::channels::{plan_channel, ChannelPlan};
use bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ;
use bluefi_wifi::Mcs;

/// BlueFi synthesizer configuration.
#[derive(Debug, Clone)]
pub struct BlueFi {
    /// FEC reversal strategy (weighted Viterbi for quality, real-time for
    /// latency).
    pub strategy: DecodeStrategy,
    /// GFSK modulation parameters.
    pub gfsk: GfskParams,
    /// QAM scale-factor mode.
    pub scale: ScaleMode,
    /// CP construction (SGI on 802.11n hardware).
    pub cp: CpCompat,
    /// Viterbi weight classes.
    pub weights: WeightProfile,
}

impl Default for BlueFi {
    fn default() -> BlueFi {
        BlueFi {
            strategy: DecodeStrategy::WeightedViterbi,
            gfsk: GfskParams::default(),
            scale: ScaleMode::Fixed(DEFAULT_SCALE),
            cp: CpCompat::sgi(),
            weights: WeightProfile::default(),
        }
    }
}

/// A synthesized BlueFi packet and its diagnostics.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The PSDU to hand to the WiFi driver.
    pub psdu: Vec<u8>,
    /// The frequency plan used.
    pub plan: ChannelPlan,
    /// MCS the packet must be transmitted at.
    pub mcs: Mcs,
    /// Scrambler seed the packet was built against.
    pub seed: u8,
    /// Number of OFDM symbols in the data field.
    pub n_symbols: usize,
    /// Coded-bit positions flipped by the FEC reversal (impairment I4).
    pub flips: Vec<usize>,
    /// Scrambled-bit positions forced to chip-determined values
    /// (SERVICE/tail/pad).
    pub forced_bits: usize,
    /// Mean per-symbol quantization error, dB (impairment I2).
    pub mean_quant_error_db: f64,
}

impl BlueFi {
    /// Synthesizes a PSDU whose transmission emits `bt_bits` as GFSK on the
    /// absolute frequency `bt_freq_hz`, choosing the WiFi channel by the
    /// Sec 2.6 frequency planning. `seed` is the scrambler seed the chip
    /// will use.
    ///
    /// Returns `None` when no WiFi channel covers the requested frequency
    /// (Bluetooth channels 0–1).
    pub fn synthesize(&self, bt_bits: &[bool], bt_freq_hz: f64, seed: u8) -> Option<Synthesis> {
        let plan = plan_channel(bt_freq_hz)?;
        Some(self.synthesize_at(bt_bits, plan, seed))
    }

    /// Synthesizes against an explicit channel plan (used when the WiFi
    /// channel is pinned, e.g. the single-channel AFH audio mode).
    pub fn synthesize_at(&self, bt_bits: &[bool], plan: ChannelPlan, seed: u8) -> Synthesis {
        let mcs = self.strategy.mcs();
        // Synthesize at the (possibly integer-snapped) transmit subcarrier.
        let offset_hz = plan.tx_subcarrier * SUBCARRIER_SPACING_HZ;
        let offset_cps = offset_hz / self.gfsk.sample_rate_hz;

        // Sec 2.3: GFSK bits -> frequency -> phase, recentered on the WiFi
        // channel *before* CP construction.
        let phase = modulate_phase(bt_bits, &self.gfsk, offset_hz);

        // Sec 2.4: CP- and windowing-compatible phase.
        let theta_hat = self.cp.make_compatible(&phase, offset_cps);
        let bodies = self.cp.strip_cp(&theta_hat);
        let n_symbols = bodies.len();

        // Sec 2.5: per-symbol FFT + constellation quantization.
        let quantizer = Quantizer::new(mcs.modulation, self.scale);
        let symbols: Vec<_> = bodies.iter().map(|b| quantizer.quantize_body(b)).collect();
        // In-band error: what the Bluetooth receiver's channel filter sees.
        let mean_quant_error_db = symbols
            .iter()
            .map(|s| s.in_band_error_db(plan.tx_subcarrier, self.weights.band))
            .sum::<f64>()
            / n_symbols.max(1) as f64;

        // Sec 2.7: demap, deinterleave, weighted FEC reversal.
        let (coded, weights) = coded_stream(&symbols, mcs, plan.tx_subcarrier, &self.weights);
        let mut rev = reverse_fec(&coded, &weights, self.strategy, plan.tx_subcarrier);

        // Sec 2.8 + framing: force the chip-owned bits, descramble, pack.
        let (psdu, forced_bits) = extract_psdu(&mut rev.scrambled, seed);

        Synthesis {
            psdu,
            plan,
            mcs,
            seed,
            n_symbols,
            flips: rev.flips,
            forced_bits,
            mean_quant_error_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_bt::ble::{adv_air_bits, AdvPdu, AdvPduType};

    fn beacon_bits() -> Vec<bool> {
        let pdu = AdvPdu {
            pdu_type: AdvPduType::AdvNonconnInd,
            adv_address: [0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF],
            adv_data: (0..24).collect(),
            tx_add: false,
        };
        adv_air_bits(&pdu, 38)
    }

    #[test]
    fn synthesis_produces_a_sane_psdu() {
        let bf = BlueFi::default();
        let syn = bf.synthesize(&beacon_bits(), 2.426e9, 71).expect("plannable");
        assert_eq!(syn.plan.wifi_channel, 3);
        assert_eq!(syn.mcs.index, 7);
        // A ~376-bit packet with 8 guard bits at 20 samples/bit needs
        // ~107 OFDM symbols at 72 samples each.
        assert!(syn.n_symbols > 90 && syn.n_symbols < 130, "{}", syn.n_symbols);
        // PSDU: n_symbols·260 bits minus framing, in bytes.
        let expect = (syn.n_symbols * 260 - 22) / 8;
        assert_eq!(syn.psdu.len(), expect);
        assert!(syn.psdu.len() < 65_535, "fits the PHY PSDU limit");
        assert!(syn.psdu.len() > 2304, "exceeds an MPDU: needs the driver mod");
    }

    #[test]
    fn quantization_error_is_small() {
        let bf = BlueFi::default();
        let syn = bf.synthesize(&beacon_bits(), 2.426e9, 71).unwrap();
        // The 64-QAM grid tracks a constant-envelope waveform to roughly
        // -10 dB in-band (the residual is quantization floor plus mild
        // clamping when the instantaneous frequency parks on one bin).
        assert!(
            syn.mean_quant_error_db < -8.0,
            "quant error {} dB",
            syn.mean_quant_error_db
        );
    }

    #[test]
    fn flips_avoid_the_bluetooth_band_viterbi() {
        let bf = BlueFi::default();
        let syn = bf.synthesize(&beacon_bits(), 2.426e9, 71).unwrap();
        let il = bluefi_wifi::Interleaver::new(syn.mcs.modulation);
        let ncbps = syn.mcs.coded_bits_per_symbol();
        for &f in &syn.flips {
            let sc = il.subcarrier_of(f % ncbps) as f64;
            let d = (sc - syn.plan.tx_subcarrier).abs();
            assert!(d > 4.0, "flip at {f} on subcarrier {sc} (BT at {})", syn.plan.tx_subcarrier);
        }
    }

    #[test]
    fn realtime_strategy_uses_mcs5() {
        let bf = BlueFi { strategy: DecodeStrategy::Realtime, ..Default::default() };
        let syn = bf.synthesize(&beacon_bits(), 2.426e9, 71).unwrap();
        assert_eq!(syn.mcs.index, 5);
        // Flips confined to the far side of the band from the BT signal
        // (BT at +12.8 -> flips on negative subcarriers).
        let il = bluefi_wifi::Interleaver::new(syn.mcs.modulation);
        let ncbps = syn.mcs.coded_bits_per_symbol();
        for &f in &syn.flips {
            let sc = il.subcarrier_of(f % ncbps);
            assert!(sc <= -4, "flip on subcarrier {sc}");
        }
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let bf = BlueFi::default();
        let a = bf.synthesize(&beacon_bits(), 2.426e9, 71).unwrap();
        let b = bf.synthesize(&beacon_bits(), 2.426e9, 71).unwrap();
        assert_eq!(a.psdu, b.psdu);
    }

    #[test]
    fn different_seed_different_psdu_same_waveform_goal() {
        let bf = BlueFi::default();
        let a = bf.synthesize(&beacon_bits(), 2.426e9, 1).unwrap();
        let b = bf.synthesize(&beacon_bits(), 2.426e9, 2).unwrap();
        assert_ne!(a.psdu, b.psdu, "descrambling must differ by seed");
    }

    #[test]
    fn unplannable_frequency_returns_none() {
        let bf = BlueFi::default();
        assert!(bf.synthesize(&beacon_bits(), 2.402e9, 71).is_none());
    }
}
