//! The end-to-end BlueFi synthesizer: Bluetooth packet bits in, 802.11n
//! PSDU bytes out (paper Secs 2.2–2.8 and 3).

use crate::cp::CpCompat;
use crate::qam::{QuantizedSymbol, Quantizer, ScaleMode, DEFAULT_SCALE};
use crate::reversal::{
    extract_psdu_into, reverse_fec_with, DecodeStrategy, Reversal, WeightProfile,
};
use crate::telemetry::{self, Counter, Gauge, SpanKind};
use bluefi_bt::anchored::AnchoredModulator;
use bluefi_bt::gfsk::{GfskParams, GfskScratch};
use bluefi_coding::ViterbiScratch;
use bluefi_dsp::Cx;
use bluefi_wifi::channels::{plan_channel, ChannelPlan};
use bluefi_wifi::qam::{demap_point_into, Modulation};
use bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ;
use bluefi_wifi::{Interleaver, Mcs};

/// How the GFSK phase signal is computed (see `bluefi_bt::anchored`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseMode {
    /// Classic frequency accumulation — the default; every golden vector
    /// and fixture was captured against it.
    Cumulative,
    /// Closed-form anchored evaluation: each sample is a float function of
    /// an integer residue plus its local pulse window, making spans of the
    /// phase signal patchable bit-exactly. Required by the template cache
    /// (`core::template`). Falls back to `Cumulative` when the anchored
    /// decomposition does not apply to the GFSK parameters.
    Anchored,
}

/// BlueFi synthesizer configuration.
#[derive(Debug, Clone)]
pub struct BlueFi {
    /// FEC reversal strategy (weighted Viterbi for quality, real-time for
    /// latency).
    pub strategy: DecodeStrategy,
    /// GFSK modulation parameters.
    pub gfsk: GfskParams,
    /// QAM scale-factor mode.
    pub scale: ScaleMode,
    /// CP construction (SGI on 802.11n hardware).
    pub cp: CpCompat,
    /// Viterbi weight classes.
    pub weights: WeightProfile,
    /// GFSK phase evaluation mode.
    pub phase: PhaseMode,
}

impl Default for BlueFi {
    fn default() -> BlueFi {
        BlueFi {
            strategy: DecodeStrategy::WeightedViterbi,
            gfsk: GfskParams::default(),
            scale: ScaleMode::Fixed(DEFAULT_SCALE),
            cp: CpCompat::sgi(),
            weights: WeightProfile::default(),
            phase: PhaseMode::Cumulative,
        }
    }
}

/// A synthesized BlueFi packet and its diagnostics.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The PSDU to hand to the WiFi driver.
    pub psdu: Vec<u8>,
    /// The frequency plan used.
    pub plan: ChannelPlan,
    /// MCS the packet must be transmitted at.
    pub mcs: Mcs,
    /// Scrambler seed the packet was built against.
    pub seed: u8,
    /// Number of OFDM symbols in the data field.
    pub n_symbols: usize,
    /// Coded-bit positions flipped by the FEC reversal (impairment I4).
    pub flips: Vec<usize>,
    /// Scrambled-bit positions forced to chip-determined values
    /// (SERVICE/tail/pad).
    pub forced_bits: usize,
    /// Mean per-symbol quantization error, dB (impairment I2).
    pub mean_quant_error_db: f64,
}

/// A per-worker arena holding every buffer one packet synthesis needs.
///
/// The first synthesis through a fresh scratch allocates and warms each
/// buffer; subsequent syntheses of same-or-smaller packets through the same
/// scratch perform **zero heap allocations** (checked by the allocation
/// probe in `bluefi_dsp::contracts` and the `runtime_profile` bench). The
/// scratch is plain mutable state — one per thread, never shared.
#[derive(Debug, Clone, Default)]
pub struct SynthesisScratch {
    gfsk: GfskScratch,
    phase: Vec<f64>,
    pub(crate) theta_ext: Vec<f64>,
    pub(crate) theta_hat: Vec<f64>,
    // Quantizer cached per (modulation, scale mode): construction runs a
    // debug-expensive constellation contract.
    pub(crate) quantizer: Option<(Modulation, ScaleMode, Quantizer)>,
    // Interleaver cached per modulation: construction runs a
    // debug-expensive bijectivity contract.
    interleaver: Option<(Modulation, Interleaver)>,
    pub(crate) fft_buf: Vec<Cx>,
    pub(crate) sym: QuantizedSymbol,
    pub(crate) demap: Vec<bool>,
    pub(crate) interleaved: Vec<bool>,
    pub(crate) block: Vec<bool>,
    w_of: Vec<u32>,
    pub(crate) coded: Vec<bool>,
    weights: Vec<u32>,
    pub(crate) vit: ViterbiScratch,
    pub(crate) rev: Reversal,
    // Anchored-phase evaluator cached per GFSK parameter set (None when the
    // decomposition does not apply — the cumulative path is used instead).
    anchored: Option<((u64, u64, u64, u64, usize), Option<AnchoredModulator>)>,
    // The previous result, recycled for its psdu/flips capacity.
    pub(crate) result: Option<Synthesis>,
}

impl SynthesisScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> SynthesisScratch {
        SynthesisScratch::default()
    }

    pub(crate) fn anchored_for(&mut self, p: &GfskParams) -> Option<&AnchoredModulator> {
        let key = (
            p.sample_rate_hz.to_bits(),
            p.symbol_rate_hz.to_bits(),
            p.deviation_hz.to_bits(),
            p.bt.to_bits(),
            p.guard_bits,
        );
        match &self.anchored {
            Some((k, _)) if *k == key => {}
            _ => self.anchored = Some((key, AnchoredModulator::new(p))),
        }
        match &self.anchored {
            Some((_, am)) => am.as_ref(),
            None => None,
        }
    }

    pub(crate) fn quantizer_for(&mut self, modulation: Modulation, mode: ScaleMode) -> &Quantizer {
        match &self.quantizer {
            Some((m, s, _)) if *m == modulation && *s == mode => {}
            _ => self.quantizer = Some((modulation, mode, Quantizer::new(modulation, mode))),
        }
        // lint: allow(panic) the match arm above guarantees Some
        &self.quantizer.as_ref().unwrap().2
    }

    pub(crate) fn interleaver_for(&mut self, modulation: Modulation) -> Interleaver {
        match &self.interleaver {
            Some((m, il)) if *m == modulation => *il,
            _ => {
                let il = Interleaver::new(modulation);
                self.interleaver = Some((modulation, il));
                il
            }
        }
    }
}

impl BlueFi {
    /// Synthesizes a PSDU whose transmission emits `bt_bits` as GFSK on the
    /// absolute frequency `bt_freq_hz`, choosing the WiFi channel by the
    /// Sec 2.6 frequency planning. `seed` is the scrambler seed the chip
    /// will use.
    ///
    /// Returns `None` when no WiFi channel covers the requested frequency
    /// (Bluetooth channels 0–1).
    pub fn synthesize(&self, bt_bits: &[bool], bt_freq_hz: f64, seed: u8) -> Option<Synthesis> {
        let plan = plan_channel(bt_freq_hz)?;
        Some(self.synthesize_at(bt_bits, plan, seed))
    }

    /// Scratch-buffer variant of [`BlueFi::synthesize`].
    pub fn synthesize_with<'s>(
        &self,
        bt_bits: &[bool],
        bt_freq_hz: f64,
        seed: u8,
        scratch: &'s mut SynthesisScratch,
    ) -> Option<&'s Synthesis> {
        let plan = plan_channel(bt_freq_hz)?;
        Some(self.synthesize_at_with(bt_bits, plan, seed, scratch))
    }

    /// Synthesizes against an explicit channel plan (used when the WiFi
    /// channel is pinned, e.g. the single-channel AFH audio mode). Thin shim
    /// over [`BlueFi::synthesize_at_with`].
    pub fn synthesize_at(&self, bt_bits: &[bool], plan: ChannelPlan, seed: u8) -> Synthesis {
        let mut scratch = SynthesisScratch::new();
        self.synthesize_at_with(bt_bits, plan, seed, &mut scratch);
        // lint: allow(panic) synthesize_at_with always stores a result
        scratch.result.take().unwrap()
    }

    /// Scratch-buffer variant of [`BlueFi::synthesize_at`]: the whole
    /// pipeline — GFSK modulation, CP compatibility, per-symbol FFT
    /// quantization, demap/deinterleave, FEC reversal, descramble — runs
    /// through `scratch`'s buffers, fused per symbol, with zero steady-state
    /// heap allocations. The returned reference borrows the result stored in
    /// the scratch; clone it to keep it past the next call.
    pub fn synthesize_at_with<'s>(
        &self,
        bt_bits: &[bool],
        plan: ChannelPlan,
        seed: u8,
        scratch: &'s mut SynthesisScratch,
    ) -> &'s Synthesis {
        let s = scratch;
        // Telemetry spans/counters below are static atomics — they add no
        // heap allocations, preserving the zero-alloc steady state.
        let _span_total = telemetry::span(SpanKind::Synthesize);
        let mcs = self.strategy.mcs();
        // Synthesize at the (possibly integer-snapped) transmit subcarrier.
        let offset_hz = plan.tx_subcarrier * SUBCARRIER_SPACING_HZ;
        let offset_cps = offset_hz / self.gfsk.sample_rate_hz;

        // Sec 2.3 + 2.4: GFSK phase, recentered on the WiFi channel, then
        // the CP- and windowing-compatible mapping. The anchored mode fuses
        // modulation, offset and block extension into one closed-form fill
        // (see `bluefi_bt::anchored`); the cumulative mode accumulates
        // frequency and extends, as the paper describes.
        let anchored =
            self.phase == PhaseMode::Anchored && s.anchored_for(&self.gfsk).is_some();
        if anchored {
            {
                // Scoped so the Gfsk span closes before CpCompat opens —
                // sibling phases, not nested (the causal trace parents
                // both directly under the synthesize root).
                let _sp = telemetry::span(SpanKind::Gfsk);
                let phase_len =
                    (bt_bits.len() + 2 * self.gfsk.guard_bits) * self.gfsk.sps();
                let ext_len = self.cp.n_blocks(phase_len.max(1)) * self.cp.block_len() + 1;
                // lint: allow(panic) anchored_for returned Some on the line above
                let am = s.anchored.as_ref().and_then(|(_, m)| m.as_ref()).unwrap();
                am.fill_ext(bt_bits, offset_cps, ext_len, &mut s.theta_ext);
            }
            let _sp2 = telemetry::span(SpanKind::CpCompat);
            self.cp.pocket_map_into(&s.theta_ext, &mut s.theta_hat);
        } else {
            {
                let _sp = telemetry::span(SpanKind::Gfsk);
                s.gfsk.modulate_phase_into(bt_bits, &self.gfsk, offset_hz, &mut s.phase);
            }
            let _sp = telemetry::span(SpanKind::CpCompat);
            self.cp
                .make_compatible_into(&s.phase, offset_cps, &mut s.theta_ext, &mut s.theta_hat);
        }
        let bl = self.cp.block_len();
        let n_symbols = s.theta_hat.len() / bl;

        // Secs 2.5 + 2.7 front half, fused per symbol: FFT + constellation
        // quantization, then demap and deinterleave straight into the coded
        // stream — no per-symbol storage.
        s.quantizer_for(mcs.modulation, self.scale);
        let il = s.interleaver_for(mcs.modulation);
        let ncbps = il.block_len();
        let bps = mcs.modulation.bits_per_symbol();
        bluefi_dsp::contracts::ensure_len(&mut s.w_of, ncbps, 0);
        for (k, w) in s.w_of.iter_mut().enumerate() {
            *w = self.weights.weight_at(il.subcarrier_of(k), plan.tx_subcarrier);
        }
        bluefi_dsp::contracts::ensure_capacity(&mut s.coded, n_symbols * ncbps);
        bluefi_dsp::contracts::ensure_capacity(&mut s.weights, n_symbols * ncbps);
        // lint: allow(panic) quantizer_for above guarantees Some
        let quantizer = &s.quantizer.as_ref().unwrap().2;
        let mut err_sum = 0.0;
        let span_quantize = telemetry::span(SpanKind::Quantize);
        for b in 0..n_symbols {
            let body = &s.theta_hat[b * bl + self.cp.cp_len..(b + 1) * bl];
            quantizer.quantize_body_into(body, &mut s.fft_buf, &mut s.sym);
            // In-band error: what the Bluetooth receiver's filter sees.
            err_sum += s.sym.in_band_error_db(plan.tx_subcarrier, self.weights.band);
            bluefi_dsp::contracts::ensure_len(&mut s.interleaved, ncbps, false);
            for (d, &p) in s.sym.points.iter().enumerate() {
                demap_point_into(mcs.modulation, p, &mut s.demap);
                s.interleaved[d * bps..(d + 1) * bps].copy_from_slice(&s.demap);
            }
            il.deinterleave_into(&s.interleaved, &mut s.block);
            s.coded.extend_from_slice(&s.block);
            s.weights.extend_from_slice(&s.w_of);
        }
        drop(span_quantize);
        let mean_quant_error_db = err_sum / n_symbols.max(1) as f64;

        // Sec 2.7 back half: weighted FEC reversal.
        {
            let _sp = telemetry::span(SpanKind::FecReversal);
            reverse_fec_with(
                &s.coded,
                &s.weights,
                self.strategy,
                plan.tx_subcarrier,
                &mut s.vit,
                &mut s.rev,
            );
        }

        // Sec 2.8 + framing: force the chip-owned bits, descramble, pack —
        // recycling the previous result's buffers.
        let (mut psdu, mut flips) = match s.result.take() {
            Some(prev) => (prev.psdu, prev.flips),
            None => (Vec::new(), Vec::new()),
        };
        let span_extract = telemetry::span(SpanKind::Extract);
        let forced_bits = extract_psdu_into(&mut s.rev.scrambled, seed, &mut psdu);
        bluefi_dsp::contracts::ensure_len(&mut flips, s.rev.flips.len(), 0);
        flips.copy_from_slice(&s.rev.flips);
        drop(span_extract);

        telemetry::incr(Counter::PacketsSynthesized);
        telemetry::add(Counter::SymbolsProcessed, n_symbols as u64);
        telemetry::add(Counter::FecFlips, flips.len() as u64);
        telemetry::add(Counter::ForcedBits, forced_bits as u64);
        telemetry::gauge_max(Gauge::ScratchCodedBits, s.coded.capacity() as u64);
        telemetry::gauge_max(Gauge::ScratchPhaseSamples, s.theta_hat.capacity() as u64);
        telemetry::gauge_max(Gauge::ScratchPsduBytes, psdu.capacity() as u64);

        s.result = Some(Synthesis {
            psdu,
            plan,
            mcs,
            seed,
            n_symbols,
            flips,
            forced_bits,
            mean_quant_error_db,
        });
        // lint: allow(panic) assigned on the line above
        s.result.as_ref().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_bt::ble::{adv_air_bits, AdvPdu, AdvPduType};

    fn beacon_bits() -> Vec<bool> {
        let pdu = AdvPdu {
            pdu_type: AdvPduType::AdvNonconnInd,
            adv_address: [0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF],
            adv_data: (0..24).collect(),
            tx_add: false,
        };
        adv_air_bits(&pdu, 38)
    }

    #[test]
    fn synthesis_produces_a_sane_psdu() {
        let bf = BlueFi::default();
        let syn = bf.synthesize(&beacon_bits(), 2.426e9, 71).expect("plannable");
        assert_eq!(syn.plan.wifi_channel, 3);
        assert_eq!(syn.mcs.index, 7);
        // A ~376-bit packet with 8 guard bits at 20 samples/bit needs
        // ~107 OFDM symbols at 72 samples each.
        assert!(syn.n_symbols > 90 && syn.n_symbols < 130, "{}", syn.n_symbols);
        // PSDU: n_symbols·260 bits minus framing, in bytes.
        let expect = (syn.n_symbols * 260 - 22) / 8;
        assert_eq!(syn.psdu.len(), expect);
        assert!(syn.psdu.len() < 65_535, "fits the PHY PSDU limit");
        assert!(syn.psdu.len() > 2304, "exceeds an MPDU: needs the driver mod");
    }

    #[test]
    fn quantization_error_is_small() {
        let bf = BlueFi::default();
        let syn = bf.synthesize(&beacon_bits(), 2.426e9, 71).unwrap();
        // The 64-QAM grid tracks a constant-envelope waveform to roughly
        // -10 dB in-band (the residual is quantization floor plus mild
        // clamping when the instantaneous frequency parks on one bin).
        assert!(
            syn.mean_quant_error_db < -8.0,
            "quant error {} dB",
            syn.mean_quant_error_db
        );
    }

    #[test]
    fn flips_avoid_the_bluetooth_band_viterbi() {
        let bf = BlueFi::default();
        let syn = bf.synthesize(&beacon_bits(), 2.426e9, 71).unwrap();
        let il = bluefi_wifi::Interleaver::new(syn.mcs.modulation);
        let ncbps = syn.mcs.coded_bits_per_symbol();
        for &f in &syn.flips {
            let sc = il.subcarrier_of(f % ncbps) as f64;
            let d = (sc - syn.plan.tx_subcarrier).abs();
            assert!(d > 4.0, "flip at {f} on subcarrier {sc} (BT at {})", syn.plan.tx_subcarrier);
        }
    }

    #[test]
    fn realtime_strategy_uses_mcs5() {
        let bf = BlueFi { strategy: DecodeStrategy::Realtime, ..Default::default() };
        let syn = bf.synthesize(&beacon_bits(), 2.426e9, 71).unwrap();
        assert_eq!(syn.mcs.index, 5);
        // Flips confined to the far side of the band from the BT signal
        // (BT at +12.8 -> flips on negative subcarriers).
        let il = bluefi_wifi::Interleaver::new(syn.mcs.modulation);
        let ncbps = syn.mcs.coded_bits_per_symbol();
        for &f in &syn.flips {
            let sc = il.subcarrier_of(f % ncbps);
            assert!(sc <= -4, "flip on subcarrier {sc}");
        }
    }

    #[test]
    fn scratch_synthesis_matches_one_shot() {
        // One scratch reused across strategies, channels, and seeds must
        // reproduce the allocating path exactly — every field.
        let mut scratch = SynthesisScratch::new();
        for strategy in [DecodeStrategy::WeightedViterbi, DecodeStrategy::Realtime] {
            let bf = BlueFi { strategy, ..Default::default() };
            for (freq, seed) in [(2.426e9, 71u8), (2.444e9, 13)] {
                let fresh = bf.synthesize(&beacon_bits(), freq, seed).unwrap();
                let via = bf
                    .synthesize_with(&beacon_bits(), freq, seed, &mut scratch)
                    .unwrap();
                assert_eq!(via.psdu, fresh.psdu, "{strategy:?} {freq} {seed}");
                assert_eq!(via.flips, fresh.flips);
                assert_eq!(via.n_symbols, fresh.n_symbols);
                assert_eq!(via.forced_bits, fresh.forced_bits);
                assert!(
                    (via.mean_quant_error_db - fresh.mean_quant_error_db).abs() < 1e-12,
                    "{} vs {}",
                    via.mean_quant_error_db,
                    fresh.mean_quant_error_db
                );
            }
        }
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let bf = BlueFi::default();
        let a = bf.synthesize(&beacon_bits(), 2.426e9, 71).unwrap();
        let b = bf.synthesize(&beacon_bits(), 2.426e9, 71).unwrap();
        assert_eq!(a.psdu, b.psdu);
    }

    #[test]
    fn different_seed_different_psdu_same_waveform_goal() {
        let bf = BlueFi::default();
        let a = bf.synthesize(&beacon_bits(), 2.426e9, 1).unwrap();
        let b = bf.synthesize(&beacon_bits(), 2.426e9, 2).unwrap();
        assert_ne!(a.psdu, b.psdu, "descrambling must differ by seed");
    }

    #[test]
    fn anchored_mode_synthesizes_and_is_deterministic() {
        // The anchored phase evaluator applies to the default GFSK
        // parameters (integer sps, rational modulation index) and must
        // produce a sane, deterministic packet under both strategies.
        for strategy in [DecodeStrategy::WeightedViterbi, DecodeStrategy::Realtime] {
            let bf = BlueFi { strategy, phase: PhaseMode::Anchored, ..Default::default() };
            let a = bf.synthesize(&beacon_bits(), 2.426e9, 71).unwrap();
            let b = bf.synthesize(&beacon_bits(), 2.426e9, 71).unwrap();
            assert_eq!(a.psdu, b.psdu, "{strategy:?}");
            assert_eq!(a.flips, b.flips);
            assert!(a.n_symbols > 90 && a.n_symbols < 130, "{}", a.n_symbols);
            let expect = (a.n_symbols * bf.strategy.mcs().data_bits_per_symbol() - 22) / 8;
            assert_eq!(a.psdu.len(), expect);
        }
    }

    #[test]
    fn anchored_mode_tracks_the_cumulative_waveform() {
        // Anchored and cumulative phase differ only by residue wrapping and
        // summation order (~2e-11 rad), physically nothing: the waveforms
        // quantize to the same in-band error and nearly all PSDU bytes are
        // identical. (Out-of-band subcarriers carry near-tie constellation
        // decisions, so a small fraction of bytes may flip and cascade
        // through the Viterbi traceback — which is exactly why the template
        // cache compares anchored-vs-anchored, never anchored-vs-cumulative.)
        let cum = BlueFi::default();
        let anc = BlueFi { phase: PhaseMode::Anchored, ..Default::default() };
        let a = cum.synthesize(&beacon_bits(), 2.426e9, 71).unwrap();
        let b = anc.synthesize(&beacon_bits(), 2.426e9, 71).unwrap();
        assert_eq!(a.psdu.len(), b.psdu.len());
        assert_eq!(a.n_symbols, b.n_symbols);
        let same = a.psdu.iter().zip(&b.psdu).filter(|(x, y)| x == y).count();
        assert!(
            same * 100 >= a.psdu.len() * 95,
            "only {same}/{} bytes agree",
            a.psdu.len()
        );
        assert!((a.mean_quant_error_db - b.mean_quant_error_db).abs() < 0.01);
    }

    #[test]
    fn unplannable_frequency_returns_none() {
        let bf = BlueFi::default();
        assert!(bf.synthesize(&beacon_bits(), 2.402e9, 71).is_none());
    }
}
