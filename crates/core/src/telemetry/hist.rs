//! Fixed-bucket histograms for the telemetry recorder.
//!
//! The layout is a log₂ ladder over `u64` values (nanoseconds for span
//! timings, plain magnitudes otherwise): bucket `i` holds values whose bit
//! length is `i` — `0` lands in bucket 0, `v ∈ [2^(i-1), 2^i)` in bucket
//! `i` — and everything at or above `2^(N_BUCKETS-1)` **saturates** into
//! the last bucket rather than being dropped. Forty buckets cover half a
//! nanosecond through ~9 minutes, which spans every duration the pipeline
//! can produce.
//!
//! Two views share this layout:
//!
//! * the global recorder's lock-free atomic cells
//!   (`telemetry::AtomicHist`), written from any thread; and
//! * this plain [`Histogram`], used for snapshots and as the **per-worker
//!   local** histogram that [`Histogram::merge`] folds together. Merge is
//!   element-wise addition plus min/max, i.e. commutative and associative,
//!   so folding per-worker histograms is bit-identical for any worker
//!   count or merge order — the same determinism guarantee `core::par`
//!   makes for results.

use crate::json::{Json, ToJson};

/// Number of log₂ buckets. Values with a bit length beyond this saturate
/// into the last bucket.
pub const N_BUCKETS: usize = 40;

/// The bucket index for a value: its bit length, clamped to the ladder.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(N_BUCKETS - 1)
}

/// Inclusive upper bound of a bucket (`2^i − 1`; the last bucket reports
/// `u64::MAX` because it absorbs every saturated value).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= N_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A plain fixed-bucket histogram with exact count/sum/min/max sidecars.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts (log₂ ladder, saturating top bucket).
    pub buckets: [u64; N_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all samples (saturating on overflow).
    pub sum: u64,
    /// Exact minimum sample (`u64::MAX` when empty).
    pub min: u64,
    /// Exact maximum sample (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: [0; N_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Element-wise and commutative: merging a
    /// set of histograms yields bit-identical state in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Approximate percentile (`p` in 0..=100): the upper bound of the
    /// bucket where the cumulative count crosses `p`% of the total,
    /// clamped into the exact `[min, max]` envelope — so a single-sample
    /// histogram reports that sample exactly at every percentile.
    /// `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        // The percentile keys are pre-clamped, so a `None` here is
        // impossible for non-empty histograms; emit null when empty.
        let pct = |p: f64| match self.percentile(p) {
            Some(v) => Json::Num(v as f64),
            None => Json::Null,
        };
        Json::obj(vec![
            ("count", Json::Num(self.count as f64)),
            ("sum", Json::Num(self.sum as f64)),
            ("min", if self.is_empty() { Json::Null } else { Json::Num(self.min as f64) }),
            ("max", if self.is_empty() { Json::Null } else { Json::Num(self.max as f64) }),
            (
                "mean",
                match self.mean() {
                    Some(m) => Json::Num(m),
                    None => Json::Null,
                },
            ),
            ("p50", pct(50.0)),
            ("p90", pct(90.0)),
            ("p99", pct(99.0)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_ladder_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn record_tracks_exact_envelope() {
        let mut h = Histogram::new();
        for v in [7u64, 300, 12] {
            h.record(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 319);
        assert_eq!(h.min, 7);
        assert_eq!(h.max, 300);
        assert!((h.mean().unwrap() - 319.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_bracketed_by_envelope() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0).unwrap();
        // Bucket resolution: p50 falls in the bucket holding rank 500
        // (values 256..511 → upper 511).
        assert!((256..=1000).contains(&p50), "p50 {p50}");
        assert_eq!(h.percentile(100.0), Some(1000));
        assert_eq!(h.percentile(0.0).unwrap().max(1), h.percentile(0.0).unwrap());
    }
}
