//! Fixed-bucket histograms for the telemetry recorder.
//!
//! The layout is a log₂ ladder over `u64` values (nanoseconds for span
//! timings, plain magnitudes otherwise): bucket `i` holds values whose bit
//! length is `i` — `0` lands in bucket 0, `v ∈ [2^(i-1), 2^i)` in bucket
//! `i` — and everything at or above `2^(N_BUCKETS-1)` **saturates** into
//! the last bucket rather than being dropped. Forty buckets cover half a
//! nanosecond through ~9 minutes, which spans every duration the pipeline
//! can produce.
//!
//! Two views share this layout:
//!
//! * the global recorder's lock-free atomic cells
//!   (`telemetry::AtomicHist`), written from any thread; and
//! * this plain [`Histogram`], used for snapshots and as the **per-worker
//!   local** histogram that [`Histogram::merge`] folds together. Merge is
//!   element-wise addition plus min/max, i.e. commutative and associative,
//!   so folding per-worker histograms is bit-identical for any worker
//!   count or merge order — the same determinism guarantee `core::par`
//!   makes for results.

use crate::json::{Json, ToJson};

/// Number of log₂ buckets. Values with a bit length beyond this saturate
/// into the last bucket.
pub const N_BUCKETS: usize = 40;

/// The bucket index for a value: its bit length, clamped to the ladder.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(N_BUCKETS - 1)
}

/// Inclusive upper bound of a bucket (`2^i − 1`; the last bucket reports
/// `u64::MAX` because it absorbs every saturated value).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= N_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of a bucket (`2^(i-1)`; bucket 0 holds only 0).
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A plain fixed-bucket histogram with exact count/sum/min/max sidecars.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts (log₂ ladder, saturating top bucket).
    pub buckets: [u64; N_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all samples (saturating on overflow).
    pub sum: u64,
    /// Exact minimum sample (`u64::MAX` when empty).
    pub min: u64,
    /// Exact maximum sample (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: [0; N_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Element-wise and commutative: merging a
    /// set of histograms yields bit-identical state in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Approximate percentile (`p` in 0..=100): linearly interpolated
    /// *within* the bucket where the cumulative count crosses `p`% of the
    /// total, then clamped into the exact `[min, max]` envelope. `p <= 0`
    /// reports the exact minimum and `p >= 100` the exact maximum.
    /// `None` when empty.
    ///
    /// Interpolation matters: reporting the bucket's *upper* bound made
    /// every percentile a log₂-bucket ceiling, so `p50` routinely exceeded
    /// the exact mean (a rank-500 sample in the 256..511 bucket reported
    /// 511 regardless of where the mass sat) — the `p50_us > mean_us`
    /// artifacts the runtime-profile JSON used to show. Spreading the
    /// bucket's samples evenly across its span keeps the estimate inside
    /// the bucket *and* statistically centered.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if p <= 0.0 {
            return Some(self.min);
        }
        if p >= 100.0 {
            return Some(self.max);
        }
        let rank = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // The rank-th sample is the `pos`-th (1-based) of `c`
                // samples assumed evenly spread over [lo, hi].
                let lo = bucket_lower(i);
                let hi = bucket_upper(i);
                let pos = rank - seen;
                let v = lo as u128 + (hi - lo) as u128 * pos as u128 / c as u128;
                return Some((v as u64).clamp(self.min, self.max));
            }
            seen += c;
        }
        Some(self.max)
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        // The percentile keys are pre-clamped, so a `None` here is
        // impossible for non-empty histograms; emit null when empty.
        let pct = |p: f64| match self.percentile(p) {
            Some(v) => Json::Num(v as f64),
            None => Json::Null,
        };
        Json::obj(vec![
            ("count", Json::Num(self.count as f64)),
            ("sum", Json::Num(self.sum as f64)),
            ("min", if self.is_empty() { Json::Null } else { Json::Num(self.min as f64) }),
            ("max", if self.is_empty() { Json::Null } else { Json::Num(self.max as f64) }),
            (
                "mean",
                match self.mean() {
                    Some(m) => Json::Num(m),
                    None => Json::Null,
                },
            ),
            ("p50", pct(50.0)),
            ("p90", pct(90.0)),
            ("p99", pct(99.0)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_ladder_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn record_tracks_exact_envelope() {
        let mut h = Histogram::new();
        for v in [7u64, 300, 12] {
            h.record(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 319);
        assert_eq!(h.min, 7);
        assert_eq!(h.max, 300);
        assert!((h.mean().unwrap() - 319.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_bracketed_by_envelope() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0).unwrap();
        // Interpolation within the rank-500 bucket (values 256..511) must
        // land near the true median — and, for a skew-free input, must not
        // exceed the exact mean (the old upper-envelope estimate reported
        // 511 here, the `p50 > mean` artifact this pins against).
        assert!((256..=511).contains(&p50), "p50 {p50}");
        assert!(
            (p50 as f64) <= h.mean().unwrap(),
            "p50 {p50} exceeds mean {}",
            h.mean().unwrap()
        );
        assert!((450..=511).contains(&p50), "p50 {p50} far from true median 500");
        // The exact envelope is pinned at the endpoints.
        assert_eq!(h.percentile(0.0), Some(1));
        assert_eq!(h.percentile(100.0), Some(1000));
        // Monotone in p.
        let p90 = h.percentile(90.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert!(p50 <= p90 && p90 <= p99, "p50 {p50} p90 {p90} p99 {p99}");
    }

    #[test]
    fn percentile_interpolates_within_buckets() {
        // 4 samples in the 256..511 bucket: ranks 1..4 spread evenly.
        let mut h = Histogram::new();
        for v in [300u64, 310, 320, 330] {
            h.record(v);
        }
        // p25 -> rank 1 -> lo + span*1/4 = 256 + 63 = 319, clamped to 300.
        assert_eq!(h.percentile(25.0), Some(319));
        // p100 -> exact max.
        assert_eq!(h.percentile(100.0), Some(330));
        // p1 -> rank 1 interpolant again (clamps keep it in-envelope).
        assert!(h.percentile(1.0).unwrap() >= 300);
    }
}
