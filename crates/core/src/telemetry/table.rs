//! The structured table writer: one type that renders either as an
//! aligned human-readable text table or as machine-readable JSON.
//!
//! This replaces the ad-hoc `println!` helpers the bench binaries used to
//! carry: a binary builds [`Table`]s (and free-form notes) once, and the
//! presentation layer decides the output format — `render()` for the
//! terminal, [`ToJson`] for `--json` pipelines and report files.

use crate::json::{Json, ToJson};

/// A titled table: a header row plus data rows of display-ready cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (rendered as `== title ==`).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows; each row's cells align under the header columns.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with a title and header.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one data row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the aligned text form (title line, header, rows), matching
    /// the layout the bench binaries have always printed.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = format!("\n== {} ==\n", self.title);
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

impl ToJson for Table {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("title", Json::Str(self.title.clone())),
            (
                "header",
                Json::Arr(self.header.iter().map(|h| Json::Str(h.clone())).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::Arr(r.iter().map(|c| Json::Str(c.clone())).collect())
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "23456".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("name   value"));
        assert!(text.contains("alpha  1"));
        assert!(text.contains("b      23456"));
    }

    #[test]
    fn json_form_carries_everything() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["x".into()]);
        let j = t.to_json();
        assert_eq!(j.get("title").and_then(Json::as_str), Some("demo"));
        assert_eq!(j.get("header").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        let rows = j.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].as_arr().unwrap()[0].as_str(), Some("x"));
    }
}
