//! Hermetic telemetry: spans, counters, gauges and fixed-bucket
//! histograms for the synthesis pipeline — std-only, zero external crates,
//! zero steady-state heap allocations while recording.
//!
//! ## Architecture
//!
//! The recorder is a set of `static` atomic cells plus one preallocated
//! span ring:
//!
//! * **Counters** ([`Counter`]) — monotonically increasing `AtomicU64`s
//!   (packets synthesized, FEC flips, simulator PER outcomes, …).
//! * **Gauges** ([`Gauge`]) — high-water marks updated with `fetch_max`
//!   (scratch-buffer capacities, fan-out width).
//! * **Timing histograms** — one log₂-bucket histogram per [`SpanKind`]
//!   (see [`hist`]), fed by [`span`] guards and [`record_duration`].
//! * **Span events** — at the `spans` level each timed span additionally
//!   appends a `(kind, start_ns, dur_ns)` record to a fixed-capacity ring
//!   ([`SPAN_RING_CAPACITY`]) that overwrites its oldest entry when full.
//!   Timestamps are monotonic nanoseconds since the recorder's first use.
//! * **Causal traces** — at the `trace` level each span also becomes a
//!   parent-linked [`trace::TraceEvent`] carrying a per-packet trace ID
//!   and worker attribution, stored in per-thread rings with
//!   tail-exemplar retention and exportable as Chrome `trace_event` JSON
//!   (see [`trace`]).
//!
//! Everything is preallocated or static, so steady-state recording
//! performs **zero heap allocations per packet** — proven by the
//! allocation probe in `bluefi_dsp::contracts` (see
//! `crates/core/tests/telemetry.rs` and the `runtime_profile` bench).
//!
//! ## Control surface
//!
//! The runtime level mirrors `BLUEFI_THREADS`: the `BLUEFI_TELEMETRY`
//! environment variable selects `off` (default), `counters` (counters,
//! gauges and aggregate timing histograms), `spans` (everything plus the
//! per-event ring) or `trace` (everything plus causal per-packet traces).
//! An unrecognized value falls back to `off` and records a one-shot
//! [`warnings`] entry surfaced by [`snapshot`].
//! [`set_level`] overrides it programmatically. When the
//! `telemetry` cargo feature is disabled, [`compiled`] is `const false`
//! and every hook const-folds to a no-op — the same pattern as
//! `bluefi_dsp::contracts`.
//!
//! ## Export
//!
//! [`snapshot`] captures the recorder into plain data ([`Snapshot`]):
//! JSON via [`crate::json::ToJson`], human-readable tables via
//! [`Snapshot::tables`]. Snapshotting allocates — it is a cold path.

pub mod hist;
pub mod table;
pub mod trace;

pub use hist::{Histogram, N_BUCKETS};
pub use table::Table;

use crate::json::{Json, ToJson};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How much the recorder captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Record nothing; every hook is a single relaxed atomic load.
    Off = 0,
    /// Counters, gauges and aggregate timing histograms.
    Counters = 1,
    /// Everything in `Counters`, plus per-event span records in the ring.
    Spans = 2,
    /// Everything in `Spans`, plus causal per-packet traces (see
    /// [`trace`]).
    Trace = 3,
}

impl Level {
    /// The level's `BLUEFI_TELEMETRY` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Counters => "counters",
            Level::Spans => "spans",
            Level::Trace => "trace",
        }
    }

    /// Parses a `BLUEFI_TELEMETRY` value (`off` / `counters` / `spans` /
    /// `trace`).
    pub fn parse(text: &str) -> Option<Level> {
        match text.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(Level::Off),
            "counters" | "1" => Some(Level::Counters),
            "spans" | "2" => Some(Level::Spans),
            "trace" | "3" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// True when telemetry support is compiled in (the `telemetry` cargo
/// feature, default-on). Const so that disabled builds fold every hook
/// away entirely.
#[inline]
pub const fn compiled() -> bool {
    cfg!(feature = "telemetry")
}

const LEVEL_UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// The level requested by the `BLUEFI_TELEMETRY` environment variable, if
/// set to a recognized value. A set-but-unrecognized value records a
/// one-shot entry in [`warnings`] instead of failing silently.
pub fn env_level() -> Option<Level> {
    let raw = std::env::var("BLUEFI_TELEMETRY").ok()?;
    let parsed = Level::parse(&raw);
    if parsed.is_none() {
        static WARNED: AtomicBool = AtomicBool::new(false);
        if !WARNED.swap(true, Ordering::Relaxed) {
            push_warning(format!(
                "invalid BLUEFI_TELEMETRY value {raw:?}: expected \
                 off|counters|spans|trace (or 0..3); telemetry stays off"
            ));
        }
    }
    parsed
}

/// Maximum retained [`warnings`] entries (the recorder never grows
/// unboundedly on a misconfiguration loop).
const MAX_WARNINGS: usize = 16;

fn warnings_store() -> &'static Mutex<Vec<String>> {
    static WARNINGS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    WARNINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn push_warning(msg: String) {
    let mut w = warnings_store().lock().unwrap_or_else(|p| p.into_inner());
    if w.len() < MAX_WARNINGS {
        w.push(msg);
    }
}

/// Configuration warnings recorded so far (e.g. an invalid
/// `BLUEFI_TELEMETRY` value). Exported on every [`Snapshot`] and *not*
/// cleared by [`reset`] — a misconfiguration stays visible for the whole
/// process lifetime.
pub fn warnings() -> Vec<String> {
    warnings_store().lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// The active recording level. Initialized lazily from `BLUEFI_TELEMETRY`
/// (default [`Level::Off`]); [`set_level`] overrides.
#[inline]
pub fn level() -> Level {
    if !compiled() {
        return Level::Off;
    }
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Counters,
        2 => Level::Spans,
        3 => Level::Trace,
        _ => {
            let l = env_level().unwrap_or(Level::Off);
            set_level(l);
            l
        }
    }
}

/// Sets the recording level. Entering [`Level::Spans`] or above
/// preallocates the span ring — and [`Level::Trace`] the calling thread's
/// trace state — so the steady state that follows never allocates.
pub fn set_level(l: Level) {
    if !compiled() {
        return;
    }
    if l >= Level::Spans {
        ring(); // warm the ring allocation outside the hot path
    }
    if l >= Level::Trace {
        trace::warm();
    }
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// True when counters/gauges/histograms are being recorded.
#[inline]
pub fn counters_on() -> bool {
    compiled() && level() >= Level::Counters
}

/// True when per-event span records are being captured.
#[inline]
pub fn spans_on() -> bool {
    compiled() && level() >= Level::Spans
}

/// True when causal per-packet traces are being captured.
#[inline]
pub fn trace_on() -> bool {
    compiled() && level() >= Level::Trace
}

macro_rules! metric_enum {
    ($(#[$outer:meta])* $enum_name:ident { $($variant:ident => $name:literal,)+ }) => {
        $(#[$outer])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $enum_name {
            $(#[doc = $name] $variant,)+
        }

        impl $enum_name {
            /// Every variant, in declaration order.
            pub const ALL: &'static [$enum_name] = &[$($enum_name::$variant,)+];
            /// Number of variants (the static storage size).
            pub const COUNT: usize = Self::ALL.len();

            /// The metric's snake_case export name.
            pub fn name(self) -> &'static str {
                match self {
                    $($enum_name::$variant => $name,)+
                }
            }
        }
    };
}

metric_enum! {
    /// Monotonically increasing event counters.
    Counter {
        PacketsSynthesized => "packets_synthesized",
        SymbolsProcessed => "ofdm_symbols_processed",
        FecFlips => "fec_flips",
        ForcedBits => "forced_bits",
        ViterbiDecodes => "viterbi_decodes",
        ViterbiCodedBits => "viterbi_coded_bits",
        ViterbiMemoHits => "viterbi_memo_hits",
        RealtimeDecodes => "realtime_decodes",
        StageWaveforms => "stage_waveforms",
        ParFanouts => "par_fanouts",
        ParItems => "par_items",
        ParChunks => "par_chunks",
        ParWorkersClamped => "par_workers_clamped",
        SimTrials => "sim_trials",
        SimRssiReports => "sim_rssi_reports",
        SimRssiSumNegCentiDbm => "sim_rssi_sum_neg_centidbm",
        SimPacketsOk => "sim_packets_ok",
        SimPacketsCrcError => "sim_packets_crc_error",
        SimPacketsLost => "sim_packets_lost",
        TemplateHit => "template_hit",
        TemplateMiss => "template_miss",
        TemplateEvict => "template_evict",
        TemplateBypass => "template_bypass",
        ServiceAccepted => "service_accepted",
        ServiceShed => "service_shed",
    }
}

metric_enum! {
    /// Gauges: high-water marks (updated with `fetch_max`) except
    /// `TemplateBytesResident` and `ServiceActiveSessions`, which track
    /// absolute sizes (updated with `gauge_set` so shrinkage shows).
    Gauge {
        ScratchCodedBits => "scratch_coded_bits_highwater",
        ScratchPhaseSamples => "scratch_phase_samples_highwater",
        ScratchPsduBytes => "scratch_psdu_bytes_highwater",
        ParMaxWorkers => "par_max_workers",
        TemplateBytesResident => "template_bytes_resident",
        ServiceActiveSessions => "service_active_sessions",
        ServiceQueueDepth => "service_queue_depth_highwater",
    }
}

metric_enum! {
    /// Named timed regions. Each kind owns one aggregate timing histogram;
    /// at the `spans` level each occurrence is also logged to the ring.
    SpanKind {
        Synthesize => "synthesize",
        Gfsk => "gfsk_modulate",
        CpCompat => "cp_compat",
        Quantize => "qam_quantize_demap",
        FecReversal => "fec_reversal",
        Extract => "descramble_extract",
        StageBaseline => "stage_baseline",
        StageCp => "stage_cp",
        StageQam => "stage_qam",
        StagePilotNull => "stage_pilot_null",
        StageFec => "stage_fec",
        StageHeader => "stage_header",
        ParWorkerBusy => "par_worker_busy",
        ParWorkerIdle => "par_worker_idle",
        SimSession => "sim_session",
        TemplatePatch => "template_patch",
        TemplateBuild => "template_build",
        ServiceRequest => "service_request",
    }
}

impl SpanKind {
    /// The pipeline-phase kinds, in execution order — the per-stage
    /// breakdown `runtime_profile` reports ([`SpanKind::Synthesize`] is
    /// the enclosing total).
    pub fn pipeline_phases() -> [SpanKind; 5] {
        [
            SpanKind::Gfsk,
            SpanKind::CpCompat,
            SpanKind::Quantize,
            SpanKind::FecReversal,
            SpanKind::Extract,
        ]
    }
}

static COUNTERS: [AtomicU64; Counter::COUNT] =
    [const { AtomicU64::new(0) }; Counter::COUNT];
static GAUGES: [AtomicU64; Gauge::COUNT] = [const { AtomicU64::new(0) }; Gauge::COUNT];

/// Lock-free histogram cells sharing the [`hist`] bucket layout.
struct AtomicHist {
    buckets: [AtomicU64; hist::N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHist {
    const fn new() -> AtomicHist {
        AtomicHist {
            buckets: [const { AtomicU64::new(0) }; hist::N_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[hist::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (slot, cell) in h.buckets.iter_mut().zip(&self.buckets) {
            *slot = cell.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed);
        h.min = self.min.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }

    fn reset(&self) {
        for cell in &self.buckets {
            cell.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

static SPAN_HISTS: [AtomicHist; SpanKind::COUNT] =
    [const { AtomicHist::new() }; SpanKind::COUNT];

/// Adds `n` to a counter. A relaxed-load no-op below [`Level::Counters`].
#[inline]
pub fn add(c: Counter, n: u64) {
    if counters_on() {
        COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Increments a counter by one.
#[inline]
pub fn incr(c: Counter) {
    add(c, 1);
}

/// The counter's current value (0 when recording is off).
pub fn counter(c: Counter) -> u64 {
    COUNTERS[c as usize].load(Ordering::Relaxed)
}

/// Raises a high-water-mark gauge to at least `v`.
#[inline]
pub fn gauge_max(g: Gauge, v: u64) {
    if counters_on() {
        GAUGES[g as usize].fetch_max(v, Ordering::Relaxed);
    }
}

/// Sets a gauge to an absolute value (for quantities that can shrink,
/// e.g. [`Gauge::TemplateBytesResident`] across evictions).
#[inline]
pub fn gauge_set(g: Gauge, v: u64) {
    if counters_on() {
        GAUGES[g as usize].store(v, Ordering::Relaxed);
    }
}

/// The gauge's current high-water mark.
pub fn gauge(g: Gauge) -> u64 {
    GAUGES[g as usize].load(Ordering::Relaxed)
}

// -- Monotonic clock ------------------------------------------------------

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the recorder's first use (the timestamp
/// base of every [`SpanEvent`]).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// -- Spans ----------------------------------------------------------------

/// One captured span occurrence: what ran, when it started (monotonic, see
/// [`now_ns`]) and for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Which region ran.
    pub kind: SpanKind,
    /// Start timestamp, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

impl ToJson for SpanEvent {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str(self.kind.name().to_string())),
            ("start_ns", Json::Num(self.start_ns as f64)),
            ("dur_ns", Json::Num(self.dur_ns as f64)),
        ])
    }
}

/// Capacity of the span-event ring. When full, the oldest event is
/// overwritten (and counted in [`Snapshot::dropped_events`]).
pub const SPAN_RING_CAPACITY: usize = 4096;

struct Ring {
    buf: Vec<SpanEvent>,
    head: usize,
    dropped: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            buf: Vec::with_capacity(SPAN_RING_CAPACITY),
            head: 0,
            dropped: 0,
        })
    })
}

fn push_event(ev: SpanEvent) {
    // A poisoned lock only means another thread panicked mid-push; the
    // ring is still structurally sound, so recover rather than propagate.
    let mut r = ring().lock().unwrap_or_else(|p| p.into_inner());
    if r.buf.len() < SPAN_RING_CAPACITY {
        if r.buf.len() == r.buf.capacity() {
            // Never taken (the ring is preallocated) — but if it ever
            // were, the allocation must self-report like every hot path.
            bluefi_dsp::contracts::probe_alloc();
        }
        r.buf.push(ev);
    } else {
        let h = r.head;
        r.buf[h] = ev;
        r.head = (h + 1) % SPAN_RING_CAPACITY;
        r.dropped += 1;
    }
}

/// Records a region's duration directly (used where a guard cannot span
/// the region, e.g. per-worker chunk times reported after a join). The
/// event's start is back-dated by the duration.
pub fn record_duration(kind: SpanKind, dur: Duration) {
    if !counters_on() {
        return;
    }
    let ns = dur.as_nanos().min(u64::MAX as u128) as u64;
    SPAN_HISTS[kind as usize].record(ns);
    if spans_on() {
        let start_ns = now_ns().saturating_sub(ns);
        push_event(SpanEvent { kind, start_ns, dur_ns: ns });
        if let Some(open) = trace::open() {
            trace::close(open, kind, start_ns, ns, 0);
        }
    }
}

/// A drop-guard that times a region and records it as `kind`. Below
/// [`Level::Counters`] the guard is inert (no clock read, no recording).
#[must_use = "the span measures until the guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    kind: SpanKind,
    start: Option<(u64, Instant)>,
    traced: Option<trace::OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((start_ns, t)) = self.start {
            let ns = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            if counters_on() {
                SPAN_HISTS[self.kind as usize].record(ns);
                if spans_on() {
                    push_event(SpanEvent { kind: self.kind, start_ns, dur_ns: ns });
                }
            }
            // Close even if the level dropped mid-span: the parent stack
            // must stay balanced.
            if let Some(open) = self.traced.take() {
                trace::close(open, self.kind, start_ns, ns, 0);
            }
        }
    }
}

/// Opens a timed span; the region ends (and is recorded) when the guard
/// drops. At [`Level::Trace`] the span also joins the calling thread's
/// causal trace (see [`trace`]).
#[inline]
pub fn span(kind: SpanKind) -> SpanGuard {
    if !counters_on() {
        return SpanGuard { kind, start: None, traced: None };
    }
    SpanGuard { kind, start: Some((now_ns(), Instant::now())), traced: trace::open() }
}

/// A trace-only drop-guard: records a parent-linked [`trace::TraceEvent`]
/// without touching the aggregate histograms or the span ring — used for
/// sub-stage attribution (e.g. the patch path's stages reusing the
/// pipeline-phase kinds) where histogram entries would distort the
/// aggregate statistics. Inert below [`Level::Trace`].
#[must_use = "the span measures until the guard drops"]
#[derive(Debug)]
pub struct TraceSpan {
    kind: SpanKind,
    start: Option<(u64, Instant)>,
    open: Option<trace::OpenSpan>,
    detail: u64,
}

impl TraceSpan {
    /// Attaches a kind-specific payload exported as the event's `detail`
    /// (e.g. dirty symbols requantized, FEC rows replayed).
    pub fn set_detail(&mut self, v: u64) {
        self.detail = v;
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let (Some((start_ns, t)), Some(open)) = (self.start, self.open.take()) {
            let ns = t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            trace::close(open, self.kind, start_ns, ns, self.detail);
        }
    }
}

/// Opens a trace-only span (see [`TraceSpan`]).
#[inline]
pub fn trace_span(kind: SpanKind) -> TraceSpan {
    if !trace_on() {
        return TraceSpan { kind, start: None, open: None, detail: 0 };
    }
    TraceSpan {
        kind,
        start: Some((now_ns(), Instant::now())),
        open: trace::open(),
        detail: 0,
    }
}

/// The aggregate timing histogram for one span kind (empty when that kind
/// never ran or recording is off).
pub fn span_hist(kind: SpanKind) -> Histogram {
    SPAN_HISTS[kind as usize].snapshot()
}

// -- Snapshot & reset -----------------------------------------------------

/// One span kind's aggregate timing statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Which region.
    pub kind: SpanKind,
    /// Its timing histogram (nanoseconds).
    pub hist: Histogram,
}

impl ToJson for SpanStat {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str(self.kind.name().to_string())),
            ("ns", self.hist.to_json()),
        ])
    }
}

/// A point-in-time copy of the whole recorder, safe to serialize or
/// render after recording moves on.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The level the recorder was at when captured.
    pub level: Level,
    /// Every counter `(name, value)`, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Every gauge `(name, high-water value)`, in [`Gauge::ALL`] order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Timing statistics for every span kind that recorded at least one
    /// occurrence.
    pub spans: Vec<SpanStat>,
    /// Ring contents, oldest first (only populated at [`Level::Spans`]).
    pub events: Vec<SpanEvent>,
    /// Events overwritten because the ring was full.
    pub dropped_events: u64,
    /// Configuration warnings (see [`warnings`]); not cleared by
    /// [`reset`].
    pub warnings: Vec<String>,
}

impl Snapshot {
    /// The timing stats for one span kind, if it recorded anything.
    pub fn span_stat(&self, kind: SpanKind) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.kind == kind)
    }

    /// The value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == c.name())
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Human-readable tables: non-zero counters/gauges, and per-span
    /// timing (count, mean/p50/p90 in µs, total ms).
    pub fn tables(&self) -> Vec<Table> {
        let mut out = Vec::new();
        let mut counters = Table::new("telemetry — counters", &["counter", "value"]);
        for &(name, v) in self.counters.iter().filter(|(_, v)| *v > 0) {
            counters.row(vec![name.to_string(), v.to_string()]);
        }
        for &(name, v) in self.gauges.iter().filter(|(_, v)| *v > 0) {
            counters.row(vec![name.to_string(), v.to_string()]);
        }
        if !counters.rows.is_empty() {
            out.push(counters);
        }
        if !self.spans.is_empty() {
            let mut spans = Table::new(
                "telemetry — span timing",
                &["span", "count", "mean µs", "p50 µs", "p90 µs", "total ms"],
            );
            for s in &self.spans {
                let us = |v: Option<u64>| match v {
                    Some(n) => format!("{:.1}", n as f64 / 1e3),
                    None => "-".to_string(),
                };
                spans.row(vec![
                    s.kind.name().to_string(),
                    s.hist.count.to_string(),
                    match s.hist.mean() {
                        Some(m) => format!("{:.1}", m / 1e3),
                        None => "-".to_string(),
                    },
                    us(s.hist.percentile(50.0)),
                    us(s.hist.percentile(90.0)),
                    format!("{:.3}", s.hist.sum as f64 / 1e6),
                ]);
            }
            out.push(spans);
        }
        out
    }
}

impl ToJson for Snapshot {
    fn to_json(&self) -> Json {
        let metric_obj = |pairs: &[(&'static str, u64)]| {
            Json::Obj(
                pairs
                    .iter()
                    .map(|&(n, v)| (n.to_string(), Json::Num(v as f64)))
                    .collect(),
            )
        };
        Json::obj(vec![
            ("level", Json::Str(self.level.name().to_string())),
            ("counters", metric_obj(&self.counters)),
            ("gauges", metric_obj(&self.gauges)),
            (
                "spans",
                Json::Obj(
                    self.spans
                        .iter()
                        .map(|s| (s.kind.name().to_string(), s.hist.to_json()))
                        .collect(),
                ),
            ),
            (
                "span_events",
                Json::Arr(self.events.iter().map(ToJson::to_json).collect()),
            ),
            ("dropped_events", Json::Num(self.dropped_events as f64)),
            (
                "warnings",
                Json::Arr(self.warnings.iter().map(|w| Json::Str(w.clone())).collect()),
            ),
        ])
    }
}

/// Captures the recorder. Allocates (cold path) — never call from inside
/// a measured region.
pub fn snapshot() -> Snapshot {
    let counters = Counter::ALL.iter().map(|&c| (c.name(), counter(c))).collect();
    let gauges = Gauge::ALL.iter().map(|&g| (g.name(), gauge(g))).collect();
    let spans: Vec<SpanStat> = SpanKind::ALL
        .iter()
        .map(|&kind| SpanStat { kind, hist: span_hist(kind) })
        .filter(|s| !s.hist.is_empty())
        .collect();
    let (events, dropped_events) = {
        let r = ring().lock().unwrap_or_else(|p| p.into_inner());
        let mut events = Vec::with_capacity(r.buf.len());
        // Oldest-first: the ring wraps at `head` once full.
        events.extend_from_slice(&r.buf[r.head..]);
        events.extend_from_slice(&r.buf[..r.head]);
        (events, r.dropped)
    };
    Snapshot {
        level: level(),
        counters,
        gauges,
        spans,
        events,
        dropped_events,
        warnings: warnings(),
    }
}

/// Captures the recorder and then zeroes it, as one section boundary:
/// exactly [`snapshot`] followed by [`reset`], returning the snapshot
/// taken immediately before the reset. Every consumer that reports
/// per-section telemetry and then starts a fresh section — the
/// `runtime_profile` bench between its sections, the service daemon's
/// `stats` endpoint with `reset: true` — goes through this one helper so
/// their views of "what a section contains" cannot drift apart.
pub fn drain_section() -> Snapshot {
    let snap = snapshot();
    reset();
    snap
}

/// Zeroes every counter, gauge and histogram and clears the span ring and
/// every trace ring (capacities retained). The level and [`warnings`] are
/// unchanged.
pub fn reset() {
    for cell in &COUNTERS {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in &GAUGES {
        cell.store(0, Ordering::Relaxed);
    }
    for h in &SPAN_HISTS {
        h.reset();
    }
    let mut r = ring().lock().unwrap_or_else(|p| p.into_inner());
    r.buf.clear();
    r.head = 0;
    r.dropped = 0;
    drop(r);
    trace::reset_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is global; tests that flip the level serialize on this
    // (the integration suite in tests/telemetry.rs does the same).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn compiled_is_on_by_default() {
        assert!(compiled());
    }

    #[test]
    fn level_parse_roundtrip() {
        for l in [Level::Off, Level::Counters, Level::Spans, Level::Trace] {
            assert_eq!(Level::parse(l.name()), Some(l));
        }
        assert_eq!(Level::parse(" SPANS "), Some(Level::Spans));
        assert_eq!(Level::parse("3"), Some(Level::Trace));
        assert_eq!(Level::parse("garbage"), None);
        assert!(Level::Trace > Level::Spans, "trace strictly extends spans");
    }

    #[test]
    fn off_level_records_nothing() {
        let _g = lock();
        set_level(Level::Off);
        reset();
        incr(Counter::PacketsSynthesized);
        gauge_max(Gauge::ParMaxWorkers, 9);
        record_duration(SpanKind::Synthesize, Duration::from_micros(5));
        drop(span(SpanKind::Gfsk));
        let snap = snapshot();
        assert_eq!(snap.counter(Counter::PacketsSynthesized), 0);
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn counters_level_aggregates_without_events() {
        let _g = lock();
        set_level(Level::Counters);
        reset();
        add(Counter::SymbolsProcessed, 107);
        incr(Counter::PacketsSynthesized);
        gauge_max(Gauge::ScratchPsduBytes, 3400);
        gauge_max(Gauge::ScratchPsduBytes, 1200); // lower: no effect
        record_duration(SpanKind::FecReversal, Duration::from_micros(250));
        let snap = snapshot();
        assert_eq!(snap.counter(Counter::SymbolsProcessed), 107);
        assert_eq!(snap.counter(Counter::PacketsSynthesized), 1);
        assert_eq!(gauge(Gauge::ScratchPsduBytes), 3400);
        let stat = snap.span_stat(SpanKind::FecReversal).expect("recorded");
        assert_eq!(stat.hist.count, 1);
        assert!(stat.hist.min >= 250_000 && stat.hist.min < 251_000);
        assert!(snap.events.is_empty(), "no ring events below spans level");
        set_level(Level::Off);
        reset();
    }

    #[test]
    fn spans_level_captures_ring_events_in_order() {
        let _g = lock();
        set_level(Level::Spans);
        reset();
        {
            let _a = span(SpanKind::Gfsk);
        }
        {
            let _b = span(SpanKind::CpCompat);
        }
        let snap = snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].kind, SpanKind::Gfsk);
        assert_eq!(snap.events[1].kind, SpanKind::CpCompat);
        assert!(snap.events[0].start_ns <= snap.events[1].start_ns);
        assert_eq!(snap.dropped_events, 0);
        set_level(Level::Off);
        reset();
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _g = lock();
        set_level(Level::Spans);
        reset();
        for _ in 0..SPAN_RING_CAPACITY + 10 {
            record_duration(SpanKind::SimSession, Duration::from_nanos(100));
        }
        let snap = snapshot();
        assert_eq!(snap.events.len(), SPAN_RING_CAPACITY);
        assert_eq!(snap.dropped_events, 10);
        // Oldest-first ordering survives the wrap.
        for w in snap.events.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
        set_level(Level::Off);
        reset();
    }

    #[test]
    fn drain_section_is_snapshot_then_reset() {
        let _g = lock();
        set_level(Level::Counters);
        reset();
        incr(Counter::ServiceAccepted);
        add(Counter::ServiceShed, 3);
        gauge_max(Gauge::ServiceQueueDepth, 7);
        record_duration(SpanKind::ServiceRequest, Duration::from_micros(40));
        let first = drain_section();
        // The returned snapshot holds everything the section recorded...
        assert_eq!(first.counter(Counter::ServiceAccepted), 1);
        assert_eq!(first.counter(Counter::ServiceShed), 3);
        let stat = first.span_stat(SpanKind::ServiceRequest).expect("recorded");
        assert_eq!(stat.hist.count, 1);
        // ...and the recorder restarts empty: a second drain sees zeros
        // (no double counting, no carry-over) while the level survives.
        let second = drain_section();
        assert_eq!(second.level, Level::Counters);
        assert_eq!(second.counter(Counter::ServiceAccepted), 0);
        assert_eq!(second.counter(Counter::ServiceShed), 0);
        assert_eq!(gauge(Gauge::ServiceQueueDepth), 0);
        assert!(second.spans.is_empty());
        assert!(second.events.is_empty());
        set_level(Level::Off);
        reset();
    }

    #[test]
    fn snapshot_tables_render() {
        let _g = lock();
        set_level(Level::Counters);
        reset();
        incr(Counter::ParFanouts);
        record_duration(SpanKind::ParWorkerBusy, Duration::from_millis(2));
        let tables = snapshot().tables();
        assert_eq!(tables.len(), 2);
        assert!(tables[0].render().contains("par_fanouts"));
        assert!(tables[1].render().contains("par_worker_busy"));
        set_level(Level::Off);
        reset();
    }

    #[test]
    fn snapshot_json_schema() {
        let _g = lock();
        set_level(Level::Counters);
        reset();
        incr(Counter::SimTrials);
        incr(Counter::TemplateHit);
        incr(Counter::TemplateMiss);
        gauge_set(Gauge::TemplateBytesResident, 4096);
        let j = snapshot().to_json();
        assert_eq!(j.get("level").and_then(Json::as_str), Some("counters"));
        assert_eq!(
            j.get("counters").and_then(|c| c.get("sim_trials")).and_then(Json::as_f64),
            Some(1.0)
        );
        // The template-cache metrics are part of the exported schema: the
        // counters, the resident-size gauge, and the patch span must appear
        // under their pinned names.
        for name in ["template_hit", "template_miss", "template_evict", "template_bypass"] {
            assert!(
                j.get("counters").and_then(|c| c.get(name)).is_some(),
                "counter {name} missing from snapshot"
            );
        }
        // The service metrics likewise: counters, gauges and the
        // per-request span all export under pinned names.
        for name in ["service_accepted", "service_shed"] {
            assert!(
                j.get("counters").and_then(|c| c.get(name)).is_some(),
                "counter {name} missing from snapshot"
            );
        }
        for name in ["service_active_sessions", "service_queue_depth_highwater"] {
            assert!(
                j.get("gauges").and_then(|g| g.get(name)).is_some(),
                "gauge {name} missing from snapshot"
            );
        }
        assert_eq!(SpanKind::ServiceRequest.name(), "service_request");
        assert_eq!(
            j.get("gauges")
                .and_then(|g| g.get("template_bytes_resident"))
                .and_then(Json::as_f64),
            Some(4096.0)
        );
        assert_eq!(SpanKind::TemplatePatch.name(), "template_patch");
        assert_eq!(SpanKind::TemplateBuild.name(), "template_build");
        assert!(j.get("span_events").and_then(Json::as_arr).is_some());
        // Configuration warnings are part of the exported schema (always
        // present, usually empty).
        assert!(j.get("warnings").and_then(Json::as_arr).is_some());
        set_level(Level::Off);
        reset();
    }
}
