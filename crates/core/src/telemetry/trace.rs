//! Causal per-packet tracing: parent-linked spans with trace IDs,
//! worker attribution and Chrome `trace_event` export.
//!
//! ## Model
//!
//! At [`super::Level::Trace`] every [`super::span`] guard additionally
//! records a [`TraceEvent`]. The first span a thread opens with no
//! enclosing span becomes a **root** and draws a fresh process-wide trace
//! ID; spans opened while it is live become its children (the parent link
//! is the innermost open span). One synthesized packet therefore yields
//! one trace: a `synthesize` (or `template_build`) root with the five
//! pipeline phases — or the patch-path stages — as children, all sharing
//! the packet's trace ID and tagged with the worker that ran them (see
//! [`worker_scope`]).
//!
//! ## Storage
//!
//! Each recording thread owns a [`ThreadState`]: a fixed-capacity event
//! ring ([`TRACE_RING_CAPACITY`], overwrite-oldest with drop accounting),
//! an in-flight packet buffer, and [`EXEMPLAR_SLOTS`] tail-exemplar slots
//! that keep the slowest packets' full span sets even after the ring has
//! wrapped past them. States live in a process-wide registry and are
//! recycled through a free list when threads exit, so short-lived batch
//! workers neither leak states nor lose their captured events. Everything
//! is preallocated when the state is created (see [`warm`], called on
//! entering the trace level), preserving the recorder's
//! zero-steady-state-allocation guarantee.
//!
//! ## Export
//!
//! [`snapshot`] copies every state into a [`TraceSnapshot`];
//! [`chrome_trace`] renders one or more snapshots as Chrome
//! `trace_event` JSON (the `chrome://tracing` / Perfetto format):
//! complete `"ph":"X"` duration events on `pid` 1 with the worker ID as
//! `tid`, plus `thread_name` metadata records. `runtime_profile
//! --trace-out` wires this to disk.

use super::SpanKind;
use crate::json::Json;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Capacity of each per-thread trace ring. When full, the oldest events
/// are overwritten (and counted in [`TraceSnapshot::dropped_events`]).
pub const TRACE_RING_CAPACITY: usize = 4096;

/// Maximum nesting depth tracked per thread. Spans opened deeper than
/// this still record (parented to the deepest tracked span) but cannot
/// themselves become parents.
pub const MAX_TRACE_DEPTH: usize = 16;

/// Maximum spans buffered for one in-flight packet (root + children).
/// Overflow spills straight to the ring and is counted in
/// [`TraceSnapshot::truncated_spans`].
pub const MAX_PACKET_SPANS: usize = 48;

/// Number of tail-exemplar slots per thread: the slowest packets (by
/// root-span duration) whose complete span sets survive ring wrap.
pub const EXEMPLAR_SLOTS: usize = 8;

/// The `parent_id` of a root span (rendered as `null` in the export).
pub const NO_PARENT: u32 = u32::MAX;

/// One closed span occurrence within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Process-wide ID of the packet (trace) this span belongs to.
    pub trace_id: u64,
    /// Span ID, unique within the trace (the root is usually 0).
    pub span_id: u32,
    /// The enclosing span's ID, or [`NO_PARENT`] for a root.
    pub parent_id: u32,
    /// Which region ran.
    pub kind: SpanKind,
    /// Worker attribution: 0 is the main thread, batch workers are 1-based
    /// (see [`worker_scope`]).
    pub worker: u32,
    /// Kind-specific payload (e.g. dirty symbols requantized, FEC rows
    /// replayed); 0 when the kind carries none.
    pub detail: u64,
    /// Start timestamp, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// A retained slowest-packet exemplar: the packet's complete span set.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// The packet's root-span duration (the retention key).
    pub root_dur_ns: u64,
    /// Every span of the packet, children first, root last.
    pub events: Vec<TraceEvent>,
}

struct ExemplarSlot {
    used: bool,
    root_dur_ns: u64,
    events: Vec<TraceEvent>,
}

/// One thread's preallocated trace storage (see the module docs).
struct ThreadState {
    ring: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
    truncated: u64,
    trace_id: u64,
    next_span: u32,
    stack: [u32; MAX_TRACE_DEPTH],
    depth: usize,
    pkt: Vec<TraceEvent>,
    exemplars: Vec<ExemplarSlot>,
}

impl ThreadState {
    fn new() -> ThreadState {
        ThreadState {
            ring: Vec::with_capacity(TRACE_RING_CAPACITY),
            head: 0,
            dropped: 0,
            truncated: 0,
            trace_id: 0,
            next_span: 0,
            stack: [0; MAX_TRACE_DEPTH],
            depth: 0,
            pkt: Vec::with_capacity(MAX_PACKET_SPANS),
            exemplars: (0..EXEMPLAR_SLOTS)
                .map(|_| ExemplarSlot {
                    used: false,
                    root_dur_ns: 0,
                    events: Vec::with_capacity(MAX_PACKET_SPANS),
                })
                .collect(),
        }
    }

    fn ring_push(&mut self, ev: TraceEvent) {
        if self.ring.len() < TRACE_RING_CAPACITY {
            if self.ring.len() == self.ring.capacity() {
                // Never taken (the ring is preallocated) — but if it ever
                // were, the allocation must self-report like every hot path.
                bluefi_dsp::contracts::probe_alloc();
            }
            self.ring.push(ev);
        } else {
            let h = self.head;
            self.ring[h] = ev;
            self.head = (h + 1) % TRACE_RING_CAPACITY;
            self.dropped += 1;
        }
    }

    /// Offers the just-closed packet (still in `pkt`, root last) as a
    /// tail exemplar: kept if a slot is free or it is slower than the
    /// current fastest retained packet.
    fn consider_exemplar(&mut self, root_dur_ns: u64) {
        let mut slot_i = 0;
        let mut fastest = u64::MAX;
        let mut found_free = false;
        for (i, s) in self.exemplars.iter().enumerate() {
            if !s.used {
                slot_i = i;
                found_free = true;
                break;
            }
            if s.root_dur_ns < fastest {
                fastest = s.root_dur_ns;
                slot_i = i;
            }
        }
        if !found_free && root_dur_ns <= fastest {
            return;
        }
        let slot = &mut self.exemplars[slot_i];
        slot.events.clear();
        slot.events.extend_from_slice(&self.pkt);
        slot.used = true;
        slot.root_dur_ns = root_dur_ns;
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<ThreadState>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<ThreadState>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn free_list() -> &'static Mutex<Vec<usize>> {
    static FREE: OnceLock<Mutex<Vec<usize>>> = OnceLock::new();
    FREE.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// A thread's lease on one registry state; returned to the free list on
/// thread exit so the next worker reuses the allocation (and the events
/// already captured stay visible to [`snapshot`]).
struct Binding {
    idx: usize,
    state: Arc<Mutex<ThreadState>>,
}

impl Drop for Binding {
    fn drop(&mut self) {
        {
            let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
            // An in-flight packet dies with its thread: account and clear.
            st.dropped += st.pkt.len() as u64;
            st.pkt.clear();
            st.depth = 0;
        }
        free_list()
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(self.idx);
    }
}

thread_local! {
    static WORKER: Cell<u32> = const { Cell::new(0) };
    static BINDING: RefCell<Option<Binding>> = const { RefCell::new(None) };
}

fn acquire() -> Binding {
    let recycled = free_list().lock().unwrap_or_else(|p| p.into_inner()).pop();
    match recycled {
        Some(idx) => {
            let state = registry().lock().unwrap_or_else(|p| p.into_inner())[idx].clone();
            Binding { idx, state }
        }
        None => {
            let state = Arc::new(Mutex::new(ThreadState::new()));
            let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
            reg.push(state.clone());
            Binding { idx: reg.len() - 1, state }
        }
    }
}

fn with_state<R>(f: impl FnOnce(&mut ThreadState) -> R) -> R {
    BINDING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let binding = slot.get_or_insert_with(acquire);
        let mut st = binding.state.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut st)
    })
}

/// Preallocates the calling thread's trace state so the steady state that
/// follows never allocates. [`super::set_level`] calls this on entering
/// [`super::Level::Trace`].
pub fn warm() {
    if super::compiled() {
        with_state(|_| {});
    }
}

/// An open span's identity, handed back to [`close`] by the guards in the
/// parent module.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpenSpan {
    span_id: u32,
    parent_id: u32,
    pushed: bool,
}

/// Opens a trace span on the calling thread: allocates a span ID, links
/// it to the innermost open span (or starts a fresh trace at depth 0) and
/// pushes it on the parent stack. Returns `None` below the trace level.
pub(crate) fn open() -> Option<OpenSpan> {
    if !super::trace_on() {
        return None;
    }
    Some(with_state(|st| {
        if st.depth == 0 {
            st.trace_id = NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed);
            st.next_span = 0;
        }
        let span_id = st.next_span;
        st.next_span = st.next_span.wrapping_add(1);
        let parent_id = if st.depth == 0 { NO_PARENT } else { st.stack[st.depth - 1] };
        let pushed = st.depth < MAX_TRACE_DEPTH;
        if pushed {
            st.stack[st.depth] = span_id;
            st.depth += 1;
        }
        OpenSpan { span_id, parent_id, pushed }
    }))
}

/// Closes a span opened by [`open`]: pops the parent stack, buffers the
/// event on the in-flight packet, and — when this close returns the
/// thread to depth 0 — flushes the whole packet to the ring and offers it
/// as a tail exemplar.
pub(crate) fn close(open: OpenSpan, kind: SpanKind, start_ns: u64, dur_ns: u64, detail: u64) {
    let worker = current_worker();
    with_state(|st| {
        if open.pushed && st.depth > 0 {
            st.depth -= 1;
        }
        let ev = TraceEvent {
            trace_id: st.trace_id,
            span_id: open.span_id,
            parent_id: open.parent_id,
            kind,
            worker,
            detail,
            start_ns,
            dur_ns,
        };
        if st.pkt.len() < MAX_PACKET_SPANS {
            st.pkt.push(ev);
        } else {
            st.truncated += 1;
            st.ring_push(ev);
        }
        if st.depth == 0 && open.parent_id == NO_PARENT {
            st.consider_exemplar(dur_ns);
            for i in 0..st.pkt.len() {
                let buffered = st.pkt[i];
                st.ring_push(buffered);
            }
            st.pkt.clear();
        }
    });
}

/// Tags the calling thread's trace events with `worker` until the guard
/// drops (restoring the previous tag). `core::par` wraps each batch
/// worker in one of these; 0 — the default — is the main thread.
pub fn worker_scope(worker: u32) -> WorkerScope {
    let prev = WORKER.with(|w| w.replace(worker));
    WorkerScope { prev }
}

/// Guard returned by [`worker_scope`]; restores the previous tag on drop.
#[must_use = "the worker tag reverts when the guard drops"]
#[derive(Debug)]
pub struct WorkerScope {
    prev: u32,
}

impl Drop for WorkerScope {
    fn drop(&mut self) {
        let prev = self.prev;
        WORKER.with(|w| w.set(prev));
    }
}

/// The calling thread's current worker tag (see [`worker_scope`]).
pub fn current_worker() -> u32 {
    WORKER.with(Cell::get)
}

/// Clears every thread's ring, in-flight buffer, exemplars and drop
/// accounting; capacities and open-span nesting are retained so live
/// guards stay balanced. Called from [`super::reset`].
pub(crate) fn reset_all() {
    let states: Vec<Arc<Mutex<ThreadState>>> =
        registry().lock().unwrap_or_else(|p| p.into_inner()).clone();
    for state in states {
        let mut st = state.lock().unwrap_or_else(|p| p.into_inner());
        st.ring.clear();
        st.head = 0;
        st.dropped = 0;
        st.truncated = 0;
        st.pkt.clear();
        for slot in &mut st.exemplars {
            slot.used = false;
            slot.root_dur_ns = 0;
            slot.events.clear();
        }
    }
}

/// A point-in-time copy of every thread's trace storage.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Every captured event (rings plus in-flight packet buffers), sorted
    /// by start time.
    pub events: Vec<TraceEvent>,
    /// Events overwritten because a ring was full, plus spans of packets
    /// whose thread exited mid-flight.
    pub dropped_events: u64,
    /// Spans that overflowed a packet buffer (recorded, but no longer
    /// guaranteed to sit next to their packet in the ring).
    pub truncated_spans: u64,
    /// Retained slowest-packet exemplars, slowest first. May duplicate
    /// ring events; [`chrome_trace`] deduplicates on export.
    pub exemplars: Vec<Exemplar>,
}

/// Captures every thread's trace state. Allocates (cold path) — never
/// call from inside a measured region.
pub fn snapshot() -> TraceSnapshot {
    let states: Vec<Arc<Mutex<ThreadState>>> =
        registry().lock().unwrap_or_else(|p| p.into_inner()).clone();
    let mut out = TraceSnapshot::default();
    for state in states {
        let st = state.lock().unwrap_or_else(|p| p.into_inner());
        // Oldest-first: the ring wraps at `head` once full.
        out.events.extend_from_slice(&st.ring[st.head..]);
        out.events.extend_from_slice(&st.ring[..st.head]);
        out.events.extend_from_slice(&st.pkt);
        out.dropped_events += st.dropped;
        out.truncated_spans += st.truncated;
        for slot in st.exemplars.iter().filter(|s| s.used) {
            out.exemplars.push(Exemplar {
                root_dur_ns: slot.root_dur_ns,
                events: slot.events.clone(),
            });
        }
    }
    out.events.sort_by_key(|e| (e.start_ns, e.trace_id, e.span_id));
    out.exemplars.sort_by(|a, b| b.root_dur_ns.cmp(&a.root_dur_ns));
    out
}

fn event_json(ev: &TraceEvent) -> Json {
    Json::obj(vec![
        ("name", Json::Str(ev.kind.name().to_string())),
        ("cat", Json::Str("bluefi".to_string())),
        ("ph", Json::Str("X".to_string())),
        ("pid", Json::Num(1.0)),
        ("tid", Json::Num(ev.worker as f64)),
        ("ts", Json::Num(ev.start_ns as f64 / 1000.0)),
        ("dur", Json::Num(ev.dur_ns as f64 / 1000.0)),
        (
            "args",
            Json::obj(vec![
                ("trace_id", Json::Num(ev.trace_id as f64)),
                ("span_id", Json::Num(ev.span_id as f64)),
                (
                    "parent_id",
                    if ev.parent_id == NO_PARENT {
                        Json::Null
                    } else {
                        Json::Num(ev.parent_id as f64)
                    },
                ),
                ("worker", Json::Num(ev.worker as f64)),
                ("detail", Json::Num(ev.detail as f64)),
            ]),
        ),
    ])
}

/// Renders one or more [`TraceSnapshot`]s as a Chrome `trace_event` JSON
/// document (loadable in Perfetto / `chrome://tracing`): complete
/// (`"ph":"X"`) duration events with microsecond `ts`/`dur`, the worker
/// ID as `tid`, causal links under `args`, plus `thread_name` metadata.
/// Events appearing in several snapshots (or both ring and exemplar) are
/// emitted once, keyed by `(trace_id, span_id)`.
pub fn chrome_trace(sections: &[TraceSnapshot]) -> Json {
    let mut seen: HashSet<(u64, u32)> = HashSet::new();
    let mut workers: BTreeSet<u32> = BTreeSet::new();
    let mut body: Vec<Json> = Vec::new();
    let mut dropped = 0u64;
    let mut truncated = 0u64;
    let mut exemplar_packets = 0u64;
    for snap in sections {
        dropped += snap.dropped_events;
        truncated += snap.truncated_spans;
        for ev in &snap.events {
            if seen.insert((ev.trace_id, ev.span_id)) {
                workers.insert(ev.worker);
                body.push(event_json(ev));
            }
        }
        for ex in &snap.exemplars {
            exemplar_packets += 1;
            for ev in &ex.events {
                if seen.insert((ev.trace_id, ev.span_id)) {
                    workers.insert(ev.worker);
                    body.push(event_json(ev));
                }
            }
        }
    }
    let mut events: Vec<Json> = Vec::with_capacity(body.len() + workers.len());
    for w in workers {
        let label =
            if w == 0 { "main".to_string() } else { format!("worker-{w}") };
        events.push(Json::obj(vec![
            ("name", Json::Str("thread_name".to_string())),
            ("ph", Json::Str("M".to_string())),
            ("pid", Json::Num(1.0)),
            ("tid", Json::Num(w as f64)),
            ("args", Json::obj(vec![("name", Json::Str(label))])),
        ]));
    }
    events.extend(body);
    Json::obj(vec![
        ("displayTimeUnit", Json::Str("ns".to_string())),
        ("traceEvents", Json::Arr(events)),
        (
            "otherData",
            Json::obj(vec![
                ("dropped_events", Json::Num(dropped as f64)),
                ("truncated_spans", Json::Num(truncated as f64)),
                ("exemplar_packets", Json::Num(exemplar_packets as f64)),
            ]),
        ),
    ])
}
