//! A tiny hand-rolled JSON value type, emitter and parser.
//!
//! The hermetic build bans `serde`, but the beacon control plane and the
//! experiment harnesses still need to emit (and occasionally re-read)
//! machine-readable reports. This is the minimal subset that covers them:
//! no zero-copy, no derive, just [`Json`] values, a renderer, a
//! recursive-descent parser, and the [`ToJson`] trait the structs in
//! `bluefi-sim` / `bluefi-apps` implement by hand.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as f64; integers render without a dot).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Conversion into a [`Json`] tree — the hand-rolled `Serialize`.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl Json {
    /// Convenience: an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_number(*v, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no Inf/NaN; emit null like most lenient emitters.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        // Rust's shortest-roundtrip Display is valid JSON number syntax.
        out.push_str(&format!("{v}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are out of scope for the
                            // control plane; map them to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&lead) => {
                    // Consume one UTF-8 scalar. Input came from a &str, so
                    // boundaries are valid; decode just the next scalar's
                    // bytes (1..=4, from the leading byte) to stay O(1).
                    let width = match lead {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + width).min(self.bytes.len());
                    let c = std::str::from_utf8(&self.bytes[self.pos..end])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid utf-8 in string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        // The matched span is ASCII by construction ([-0-9.eE+]).
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError { message: "bad number".to_string(), offset: start })?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { message: format!("bad number '{text}'"), offset: start })
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_objects() {
        let j = Json::obj(vec![
            ("name", Json::Str("bluefi".into())),
            ("n", Json::Num(3.0)),
            ("per", Json::Num(0.125)),
            ("ok", Json::Bool(true)),
            ("tags", Json::Arr(vec![Json::Num(-1.0), Json::Null])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"bluefi","n":3,"per":0.125,"ok":true,"tags":[-1,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }

    #[test]
    fn parse_render_roundtrip() {
        let text = r#"{"a":[1,2.5,-3e2,true,false,null,"x"],"b":{"c":""}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some(""));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn nonfinite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
