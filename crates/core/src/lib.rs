//! # bluefi-core
//!
//! The BlueFi synthesis pipeline — the paper's primary contribution.
//! Given a Bluetooth packet's GFSK bits and a target frequency, produce an
//! 802.11n PSDU such that an *unmodified* WiFi transmit chain emits a
//! waveform ordinary Bluetooth receivers decode:
//!
//! * [`cp`] — CP/windowing-compatible phase construction (Sec 2.4).
//! * [`qam`] — least-squares constellation quantization (Sec 2.5).
//! * [`reversal`] — demap, deinterleave, weighted-Viterbi / real-time FEC
//!   reversal, descrambling (Secs 2.7–2.8).
//! * [`pipeline`] — the end-to-end synthesizer with frequency planning
//!   (Sec 2.6).
//! * [`stages`] — cumulative impairment staging for the Sec 4.6 study.
//! * [`template`] — template cache + GF(2) delta synthesis for beacon
//!   fleets (first synthesis per key is cached; mutated payloads are
//!   patched bit-exactly in microseconds).
//! * [`verify`] — forward loopback through the real TX chain and a COTS
//!   Bluetooth receiver model.
//!
//! Plus the hermetic-build substrate the rest of the workspace shares
//! (the build environment has no registry access, so these replace their
//! crates.io equivalents):
//!
//! * [`rng`] — seedable xoshiro256++ randomness (replaces `rand`).
//! * [`json`] — a tiny JSON emitter/parser (replaces `serde`).
//! * [`check`] — the randomized-property harness (replaces `proptest`).
//! * [`telemetry`] — hermetic spans/counters/histograms recorder
//!   (replaces `tracing`/`metrics`), `BLUEFI_TELEMETRY`-controlled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod cp;
pub mod json;
pub mod par;
pub mod pipeline;
pub mod qam;
pub mod reversal;
pub mod rng;
pub mod stages;
pub mod telemetry;
pub mod template;
pub mod verify;

pub use cp::CpCompat;
pub use json::{Json, ToJson};
pub use par::{
    clamped_workers, host_cpus, par_map, par_map_scratch, worker_count, BatchJob,
    SynthesisBatch,
};
pub use pipeline::{BlueFi, PhaseMode, Synthesis, SynthesisScratch};
pub use qam::{Quantizer, ScaleMode};
pub use reversal::{DecodeStrategy, WeightProfile};
pub use rng::{Rng, SeedableRng, StdRng};
pub use stages::Stage;
pub use telemetry::{Histogram, Table};
pub use template::{CachedEngine, CachedScratch, Template, TemplateKey, TemplateStore};
