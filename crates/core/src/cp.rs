//! Cyclic-prefix and windowing compensation (paper Sec 2.4, Figs 2–3).
//!
//! The CP-insertion block overwrites the first `L` samples of every OFDM
//! symbol with a copy of its tail, and COTS chips additionally window each
//! symbol boundary by averaging an extension sample with the next symbol's
//! first sample. Instead of fighting those operations, BlueFi designs a
//! phase signal θ̂ that is a *fixed point* of both:
//!
//! * within every `(L + 64)`-sample block the first `L` samples equal the
//!   last `L` (so CP insertion reproduces them exactly), and
//! * the sample that follows each block's CP equals the next block's first
//!   sample (so the windowing average changes nothing).
//!
//! The price is that a handful of samples around each symbol boundary carry
//! the *wrong part* of the Bluetooth waveform — a ≤ 250 ns glitch per
//! boundary at SGI, mostly above 4 MHz, which the Bluetooth receiver's
//! channel filter removes.

/// How the CP/tail "pocket" samples — the L positions that must appear
/// twice per block — are filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PocketMode {
    /// The paper's Fig 3 construction: the CP head keeps the true phase up
    /// to `split`, the rest is copied verbatim from ±64 samples away. One
    /// of the two appearances of each pocket sample carries the full phase
    /// offset `Δ = θ[n+64] − θ[n]` (wrapped).
    PaperSplit,
    /// Geodesic-midpoint alternative: each pocket sample carries
    /// `θ[n] + wrap(Δ)/2`, so *both* appearances are off by only `Δ/2` —
    /// but for twice as many samples. Empirically WORSE than the paper's
    /// split (kept for the ablation bench): after the Bluetooth channel
    /// filter, closely-spaced opposite-sign glitch impulses cancel, so
    /// shorter full-offset pockets beat longer half-offset ones.
    Midpoint,
}

/// The θ̂ construction for a given CP length.
#[derive(Debug, Clone, Copy)]
pub struct CpCompat {
    /// CP length in samples (8 for SGI, 16 for long GI).
    pub cp_len: usize,
    /// For [`PocketMode::PaperSplit`]: how many leading CP samples keep
    /// their true phase; the remaining are copied from the tail region. The
    /// paper's SGI construction uses 5 (samples 0–4 true, 5–8 copied).
    pub split: usize,
    /// Pocket fill strategy.
    pub pocket: PocketMode,
}

impl CpCompat {
    /// The paper's Fig 3 construction for short guard intervals — the
    /// default.
    pub fn sgi() -> CpCompat {
        CpCompat { cp_len: 8, split: 5, pocket: PocketMode::PaperSplit }
    }

    /// Alias of [`CpCompat::sgi`] kept for the ablation bench's naming.
    pub fn sgi_paper() -> CpCompat {
        CpCompat::sgi()
    }

    /// The midpoint-pocket variant (tried and rejected; see
    /// [`PocketMode::Midpoint`]).
    pub fn sgi_midpoint() -> CpCompat {
        CpCompat { cp_len: 8, split: 5, pocket: PocketMode::Midpoint }
    }

    /// The equivalent construction for long guard intervals (the Sec 5.1
    /// 802.11g discussion: twice the distortion).
    pub fn lgi() -> CpCompat {
        CpCompat { cp_len: 16, split: 9, pocket: PocketMode::PaperSplit }
    }

    /// Block (symbol) length: CP + 64.
    pub fn block_len(&self) -> usize {
        self.cp_len + 64
    }

    /// Number of OFDM symbols needed to carry `n` phase samples.
    pub fn n_blocks(&self, n: usize) -> usize {
        n.div_ceil(self.block_len())
    }

    /// Builds θ̂ from θ. The input is conceptually extended by `extend`
    /// (below) to a whole number of blocks.
    ///
    /// Per block at offset `N` (paper's equations, generalized from L=8):
    ///
    /// ```text
    /// θ̂[N+n] = θ[N+n]        0 ≤ n < split          (true CP head)
    /// θ̂[N+n] = θ[N+n+64]     split ≤ n ≤ L          (CP tail copied from
    ///                                                 the symbol's end)
    /// θ̂[N+n] = θ[N+n]        L < n < 64+split       (body, true)
    /// θ̂[N+n] = θ̂[N+n-64]     64+split ≤ n < 64+L    (tail = CP copy — these
    ///                                                 carry θ[N+n-64], the
    ///                                                 glitch)
    /// ```
    ///
    /// Note the index sets: samples `split..=L` of the CP region and
    /// `64+split..64+L` of the tail are the only ones differing from θ.
    pub fn make_compatible(&self, theta: &[f64], extend_freq_cps: f64) -> Vec<f64> {
        let mut ext = Vec::new();
        let mut out = Vec::new();
        self.make_compatible_into(theta, extend_freq_cps, &mut ext, &mut out);
        out
    }

    /// Scratch-buffer variant of [`CpCompat::make_compatible`]: extends θ
    /// through `ext` and builds θ̂ into `out`, allocating only when a buffer
    /// must grow.
    pub fn make_compatible_into(
        &self,
        theta: &[f64],
        extend_freq_cps: f64,
        ext: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) {
        // One extra lookahead sample: the last block's CP tail references
        // θ[N+64+L], the sample just past the block.
        self.extend_into(theta, extend_freq_cps, ext);
        self.pocket_map_into(ext, out);
    }

    /// The per-block pocket mapping alone: builds θ̂ from an
    /// already-extended θ (whole blocks plus one lookahead sample, as
    /// produced by [`CpCompat::extend_into`] or an anchored-phase fill).
    /// Factored out so the template cache's patch path can re-map
    /// individual recomputed spans with the exact same copy semantics as
    /// the cold path.
    pub fn pocket_map_into(&self, ext: &[f64], out: &mut Vec<f64>) {
        let theta = ext;
        let bl = self.block_len();
        debug_assert_eq!((theta.len() - 1) % bl, 0);
        bluefi_dsp::contracts::ensure_len(out, theta.len() - 1, 0.0);
        for block in 0..out.len() / bl {
            let base = block * bl;
            for n in 0..bl {
                out[base + n] = match self.pocket {
                    PocketMode::PaperSplit => {
                        if n < self.split {
                            theta[base + n]
                        } else if n <= self.cp_len {
                            theta[base + n + 64]
                        } else if n < 64 {
                            theta[base + n]
                        } else {
                            // The last L samples mirror the CP region so
                            // that CP insertion reproduces the block.
                            out[base + n - 64]
                        }
                    }
                    PocketMode::Midpoint => {
                        if n == 0 {
                            // Geodesic midpoint between the two true phases
                            // this sample must stand in for; later pocket
                            // samples stay on the same branch (below).
                            let a = theta[base];
                            let b = theta[base + 64];
                            a + bluefi_dsp::phase::wrap_angle(b - a) * 0.5
                        } else if n < self.cp_len {
                            // Keep the offset branch-coherent across the
                            // pocket: follow Δ's drift from the previous
                            // sample instead of re-wrapping (a re-wrap flips
                            // sign when Δ crosses ±π mid-pocket and shreds
                            // the waveform).
                            let a = theta[base + n];
                            let prev_off = out[base + n - 1] - theta[base + n - 1];
                            let d_prev = theta[base + n - 1 + 64] - theta[base + n - 1];
                            let d_cur = theta[base + n + 64] - theta[base + n];
                            a + prev_off + (d_cur - d_prev) * 0.5
                        } else if n < 64 {
                            theta[base + n]
                        } else {
                            out[base + n - 64]
                        }
                    }
                };
            }
        }
    }

    /// Extends θ to a whole number of blocks *plus one lookahead sample* by
    /// continuing at a constant frequency `extend_freq_cps` (cycles/sample —
    /// normally the Bluetooth channel's offset, so the carrier just keeps
    /// spinning).
    pub fn extend(&self, theta: &[f64], extend_freq_cps: f64) -> Vec<f64> {
        let mut out = Vec::new();
        self.extend_into(theta, extend_freq_cps, &mut out);
        out
    }

    /// Scratch-buffer variant of [`CpCompat::extend`].
    pub fn extend_into(&self, theta: &[f64], extend_freq_cps: f64, out: &mut Vec<f64>) {
        let bl = self.block_len();
        let target = self.n_blocks(theta.len().max(1)) * bl + 1;
        bluefi_dsp::contracts::ensure_len(out, target, 0.0);
        out[..theta.len()].copy_from_slice(theta);
        let mut last = theta.last().copied().unwrap_or(0.0);
        for slot in out[theta.len()..].iter_mut() {
            last += 2.0 * std::f64::consts::PI * extend_freq_cps;
            *slot = last;
        }
    }

    /// Extracts the 64-sample symbol bodies (CP stripped) — the waveform the
    /// IFFT must produce per symbol.
    pub fn strip_cp(&self, theta_hat: &[f64]) -> Vec<Vec<f64>> {
        let bl = self.block_len();
        assert_eq!(theta_hat.len() % bl, 0, "θ̂ must be whole blocks");
        theta_hat
            .chunks_exact(bl)
            .map(|b| b[self.cp_len..].to_vec())
            .collect()
    }

    /// Which sample indices of a block may differ from the true phase — the
    /// glitch positions (for diagnostics/tests).
    ///
    /// * `PaperSplit`: the copied CP tail (`split..=L`, carrying future
    ///   phase at full offset) and the start of the symbol tail
    ///   (`64..64+split`, past phase at full offset) — at SGI 4 + 5 samples
    ///   = 200/250 ns, the paper's "less than 250 ns" per boundary bit.
    /// * `Midpoint`: all `2L` pocket positions (`0..L` and `64..64+L`), each
    ///   at only *half* the phase offset (plus one boundary sample the
    ///   windowing averages to a quarter offset).
    pub fn distorted_indices(&self) -> Vec<usize> {
        match self.pocket {
            PocketMode::PaperSplit => {
                let mut v: Vec<usize> = (self.split..=self.cp_len).collect();
                v.extend(64..64 + self.split);
                v
            }
            PocketMode::Midpoint => {
                let mut v: Vec<usize> = (0..self.cp_len).collect();
                v.extend(64..64 + self.cp_len);
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, f: f64) -> Vec<f64> {
        (0..n).map(|i| 2.0 * std::f64::consts::PI * f * i as f64).collect()
    }

    #[test]
    fn cp_equals_tail_in_every_block() {
        let c = CpCompat::sgi();
        let theta: Vec<f64> = (0..72 * 5).map(|i| (i as f64 * 0.11).sin() * 2.0).collect();
        let th = c.make_compatible(&theta, 0.0);
        for block in th.chunks_exact(72) {
            for n in 0..8 {
                assert_eq!(block[n], block[64 + n], "CP sample {n}");
            }
        }
    }

    #[test]
    fn windowing_fixed_point() {
        // The exact fixed point holds for the paper's split construction.
        // The extension sample of block m (θ̂[Nm + L], the first body
        // sample... per the standard the extension equals the sample right
        // after the CP of the SAME symbol continued cyclically, i.e.
        // θ̂[N + L] of the next cyclic repeat = body[0] = θ̂[N + 8].
        // BlueFi's requirement: θ̂[N+8] == θ̂[N+72] (the next block's first
        // sample), so averaging is a no-op.
        let c = CpCompat::sgi_paper();
        let theta: Vec<f64> = (0..72 * 6).map(|i| (i as f64 * 0.07).cos()).collect();
        let th = c.make_compatible(&theta, 0.0);
        for m in 0..5 {
            let n = m * 72;
            assert_eq!(th[n + 8], th[n + 72], "block {m}");
        }
    }

    #[test]
    fn distortion_is_confined_and_small() {
        let c = CpCompat::sgi_paper();
        let theta: Vec<f64> = (0..72 * 4).map(|i| (i as f64 * 0.05).sin()).collect();
        let th = c.make_compatible(&theta, 0.0);
        let bad = c.distorted_indices();
        for (i, (&a, &b)) in theta.iter().zip(&th).enumerate() {
            if bad.contains(&(i % 72)) {
                continue;
            }
            assert_eq!(a, b, "sample {i} should be untouched");
        }
        // 4 + 5 glitch samples per 72 (SGI): under 13%.
        assert_eq!(bad.len(), 9);
    }

    #[test]
    fn paper_equations_for_sgi() {
        // Check the exact index mapping of Sec 2.4 on the first block of a
        // two-block signal (so every referenced index is an original value,
        // not an extension).
        let c = CpCompat::sgi_paper();
        let theta: Vec<f64> = (0..144).map(|i| i as f64).collect();
        let th = c.make_compatible(&theta, 0.0);
        for n in 0..=4usize {
            assert_eq!(th[n], n as f64); // θ[N+n]
        }
        for n in 5..=8usize {
            assert_eq!(th[n], (n + 64) as f64); // θ[N+n+64]
        }
        for n in 9..64usize {
            assert_eq!(th[n], n as f64);
        }
        for n in 64..=68usize {
            assert_eq!(th[n], (n - 64) as f64); // copies of the CP head
        }
        for n in 69..72usize {
            assert_eq!(th[n], n as f64); // θ̂[n] = θ̂[n-64] = θ[n]
        }
    }

    #[test]
    fn extension_continues_carrier() {
        let c = CpCompat::sgi();
        let f = 0.05;
        let theta = ramp(100, f); // not a multiple of 72
        let ext = c.extend(&theta, f);
        assert_eq!(ext.len(), 145); // two blocks + one lookahead sample
        // The continuation keeps the same slope.
        for i in 100..145 {
            let expect = 2.0 * std::f64::consts::PI * f * i as f64;
            assert!((ext[i] - expect).abs() < 1e-9, "sample {i}");
        }
    }

    #[test]
    fn lgi_doubles_the_glitch() {
        assert_eq!(CpCompat::sgi_paper().distorted_indices().len(), 9);
        assert_eq!(CpCompat::lgi().distorted_indices().len(), 17);
        // Midpoint mode touches all 2L pocket positions, at half offset.
        assert_eq!(CpCompat::sgi_midpoint().distorted_indices().len(), 16);
    }

    #[test]
    fn strip_cp_returns_bodies() {
        let c = CpCompat::sgi();
        let theta: Vec<f64> = (0..72 * 3).map(|i| i as f64 * 0.01).collect();
        let th = c.make_compatible(&theta, 0.0);
        let bodies = c.strip_cp(&th);
        assert_eq!(bodies.len(), 3);
        for (m, b) in bodies.iter().enumerate() {
            assert_eq!(b.len(), 64);
            assert_eq!(b[0], th[m * 72 + 8]);
        }
    }

    #[test]
    fn round_trip_through_cp_insertion_is_exact() {
        // Simulate what the chip does: IFFT bodies, prepend CP (copy of
        // tail), stitch with windowing — the result's phase must equal θ̂
        // everywhere (that is the whole point of the construction).
        use bluefi_dsp::phase::wrap_angle;
        use bluefi_dsp::Cx;
        let c = CpCompat::sgi_paper();
        let theta: Vec<f64> = (0..72 * 4)
            .map(|i| 0.8 * (i as f64 * 0.09).sin() + 0.02 * i as f64)
            .collect();
        let th = c.make_compatible(&theta, 0.02 / (2.0 * std::f64::consts::PI));
        let bodies = c.strip_cp(&th);
        // Reconstruct each symbol the hardware way: body -> CP+body.
        let mut rebuilt: Vec<Vec<Cx>> = Vec::new();
        for b in &bodies {
            let body_iq: Vec<Cx> = b.iter().map(|&p| Cx::expj(p)).collect();
            let mut sym = body_iq[64 - 8..].to_vec();
            sym.extend(body_iq);
            rebuilt.push(sym);
        }
        let wave = bluefi_wifi::ofdm::stitch_symbols(
            &rebuilt,
            bluefi_wifi::ofdm::GuardInterval::Short,
            true,
        );
        for (i, v) in wave.iter().enumerate() {
            let err = wrap_angle(v.arg() - th[i]);
            assert!(err.abs() < 1e-9, "sample {i}: {err}");
            assert!((v.abs() - 1.0).abs() < 1e-9, "sample {i} envelope");
        }
    }

    #[test]
    fn midpoint_pockets_still_satisfy_cp_equals_tail() {
        let c = CpCompat::sgi_midpoint();
        let theta: Vec<f64> = (0..72 * 5).map(|i| (i as f64 * 0.13).sin() * 1.7).collect();
        let th = c.make_compatible(&theta, 0.0);
        for block in th.chunks_exact(72) {
            for n in 0..8 {
                assert_eq!(block[n], block[64 + n], "CP sample {n}");
            }
        }
    }

    #[test]
    fn midpoint_halves_the_worst_pocket_offset() {
        use bluefi_dsp::phase::wrap_angle;
        // A ramp with large per-64-sample advance: the paper split leaves a
        // full-offset pocket, the midpoint leaves half.
        let f = 0.0503; // ~0.2-cycle wrapped advance over 64 samples
        let theta = ramp(72 * 4, f);
        let err_of = |c: CpCompat| -> f64 {
            let th = c.make_compatible(&theta, f);
            theta
                .iter()
                .zip(&th)
                .map(|(&a, &b)| wrap_angle(b - a).abs())
                .fold(0.0f64, f64::max)
        };
        let paper = err_of(CpCompat::sgi_paper());
        let mid = err_of(CpCompat::sgi_midpoint());
        assert!(mid < paper * 0.6, "paper {paper}, midpoint {mid}");
        assert!(mid > 0.0);
    }
}
