//! Frequency-domain quantization (paper Sec 2.5, Fig 4).
//!
//! Per OFDM symbol, the target time-domain waveform `x[n] = A·e^{jθ̂[n]}`
//! is transformed with an (unnormalized) FFT and each data subcarrier is
//! snapped to the nearest constellation point. By Parseval, minimizing the
//! frequency-domain residue minimizes the time-domain least-squares error —
//! and since each subcarrier quantizes independently, nearest-point
//! rounding *is* the relaxed optimum.
//!
//! The scale factor A sizes the waveform against the constellation: the
//! paper reasons in grid units where the outermost 64-QAM level is
//! 35 (= 7·5), and picks A so a two-tone split of one symbol's energy puts
//! ≈ 32 units on each tone — just inside that outermost level. A unit
//! phasor's unnormalized 64-point FFT concentrates ≈ 64/2 = 32 per split
//! tone, so in *standard* units (levels ±1..±7, outermost 7) the scale is
//! `A = (32/35)·(2·7/64) = 0.2`.
//!
//! Two consequences worth knowing:
//!
//! * zero is **not** a 64-QAM point, so every out-of-band data subcarrier
//!   still carries a minimum (±1,±1) value — a wideband quantization floor
//!   the Bluetooth receiver's channel filter removes; and
//! * energy concentrated on a *single* bin (steady carrier) slightly
//!   exceeds the grid corner and clamps — harmless for GFSK, whose
//!   frequency transitions keep the energy split.

use bluefi_dsp::fft::{bin_of_subcarrier, fft_plan};
use bluefi_dsp::{Cx, FftPlan};
use bluefi_wifi::qam::{quantize_point, Modulation};
use bluefi_wifi::subcarriers::{data_subcarriers, FFT_SIZE};
use std::sync::Arc;

/// The paper's fixed scale factor (Sec 2.5) in standard constellation
/// units: two-tone peak (32·A·…) lands at ~91 % of the outermost level.
pub const DEFAULT_SCALE: f64 = 0.2;

/// Quantization strategy for the per-symbol scale factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleMode {
    /// A fixed scale (the paper's choice; `DEFAULT_SCALE`).
    Fixed(f64),
    /// Per-symbol search over a small grid of scales, keeping the one with
    /// the least residue — the "dynamic scale factor" the paper tried and
    /// found not worth it (ablation `ablation_scale_factor`).
    Dynamic,
}

/// One quantized OFDM symbol.
#[derive(Debug, Clone, Default)]
pub struct QuantizedSymbol {
    /// Constellation points on the 52 data subcarriers (unnormalized
    /// units), in data-subcarrier order.
    pub points: Vec<Cx>,
    /// The scale factor used.
    pub scale: f64,
    /// Frequency-domain residue `Σ|X − X̂|²` over data subcarriers.
    pub residue: f64,
    /// Total target energy `Σ|X|²` over data subcarriers (for normalized
    /// error reporting).
    pub energy: f64,
    /// Per-data-subcarrier `(residue, energy)` pairs for band-limited error
    /// reporting.
    pub per_subcarrier: Vec<(f64, f64)>,
}

impl QuantizedSymbol {
    /// Residue relative to signal energy over all data subcarriers, in dB.
    /// Dominated by the (±1,±1) floor on out-of-band subcarriers — see the
    /// module docs; prefer [`QuantizedSymbol::in_band_error_db`] for the
    /// metric a Bluetooth receiver experiences.
    pub fn error_db(&self) -> f64 {
        10.0 * (self.residue / self.energy.max(1e-12)).log10()
    }

    /// Residue relative to energy over the subcarriers within
    /// `half_width` of `bt_subcarrier`, in dB.
    pub fn in_band_error_db(&self, bt_subcarrier: f64, half_width: f64) -> f64 {
        let mut residue = 0.0;
        let mut energy = 0.0;
        for (d, &sc) in data_subcarriers().iter().enumerate() {
            if (sc as f64 - bt_subcarrier).abs() <= half_width {
                residue += self.per_subcarrier[d].0;
                energy += self.per_subcarrier[d].1;
            }
        }
        10.0 * (residue / energy.max(1e-12)).log10()
    }
}

/// The quantizer.
#[derive(Debug, Clone)]
pub struct Quantizer {
    modulation: Modulation,
    mode: ScaleMode,
    plan: Arc<FftPlan>,
}

impl Quantizer {
    /// Creates a quantizer for `modulation` (64-QAM in the real system;
    /// 256/1024-QAM for the Sec 5.1 ablation). The FFT plan comes from the
    /// process-wide cache, so construction is cheap after the first call.
    pub fn new(modulation: Modulation, mode: ScaleMode) -> Quantizer {
        // Stage contract: the grid this quantizer snaps to must carry the
        // standard's unit-power normalization, or residue/error_db readings
        // are biased.
        bluefi_wifi::qam::check_constellation_unit_energy(modulation);
        Quantizer { modulation, mode, plan: fft_plan(FFT_SIZE) }
    }

    /// Quantizes one 64-sample body phase signal. Thin shim over
    /// [`Quantizer::quantize_body_into`].
    pub fn quantize_body(&self, body_phase: &[f64]) -> QuantizedSymbol {
        let mut fft_buf = Vec::new();
        let mut out = QuantizedSymbol::default();
        self.quantize_body_into(body_phase, &mut fft_buf, &mut out);
        out
    }

    /// Scratch-buffer variant of [`Quantizer::quantize_body`]: runs the FFT
    /// through `fft_buf` and writes the quantized symbol into `out`, reusing
    /// both buffers' capacity. Allocation-free at steady state for
    /// [`ScaleMode::Fixed`]; the [`ScaleMode::Dynamic`] grid search keeps one
    /// internal candidate symbol per call (its growth is probe-counted).
    pub fn quantize_body_into(
        &self,
        body_phase: &[f64],
        fft_buf: &mut Vec<Cx>,
        out: &mut QuantizedSymbol,
    ) {
        assert_eq!(body_phase.len(), 64);
        match self.mode {
            ScaleMode::Fixed(s) => self.quantize_at_scale_into(body_phase, s, fft_buf, out),
            ScaleMode::Dynamic => {
                let mut s = 0.7 * DEFAULT_SCALE;
                self.quantize_at_scale_into(body_phase, s, fft_buf, out);
                let mut cand = QuantizedSymbol::default();
                s += 0.05 * DEFAULT_SCALE;
                while s <= 1.3 * DEFAULT_SCALE {
                    self.quantize_at_scale_into(body_phase, s, fft_buf, &mut cand);
                    // Compare normalized error so the scale itself does not
                    // bias the comparison.
                    if cand.error_db() < out.error_db() {
                        std::mem::swap(out, &mut cand);
                    }
                    s += 0.05 * DEFAULT_SCALE;
                }
            }
        }
    }

    fn quantize_at_scale_into(
        &self,
        body_phase: &[f64],
        scale: f64,
        fft_buf: &mut Vec<Cx>,
        out: &mut QuantizedSymbol,
    ) {
        bluefi_dsp::contracts::ensure_len(fft_buf, body_phase.len(), Cx::ZERO);
        for (slot, &p) in fft_buf.iter_mut().zip(body_phase) {
            *slot = Cx::expj(p) * scale;
        }
        self.plan.forward(fft_buf);
        bluefi_dsp::contracts::ensure_len(&mut out.points, 52, Cx::ZERO);
        bluefi_dsp::contracts::ensure_len(&mut out.per_subcarrier, 52, (0.0, 0.0));
        out.scale = scale;
        out.residue = 0.0;
        out.energy = 0.0;
        for (d, &sc) in data_subcarriers().iter().enumerate() {
            let x = fft_buf[bin_of_subcarrier(sc, FFT_SIZE)];
            let q = quantize_point(x, self.modulation);
            let r = (x - q).norm_sq();
            let e = x.norm_sq();
            out.residue += r;
            out.energy += e;
            out.per_subcarrier[d] = (r, e);
            out.points[d] = q;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone_phase(subcarrier: f64) -> Vec<f64> {
        (0..64).map(|n| 2.0 * PI * subcarrier * n as f64 / 64.0).collect()
    }

    #[test]
    fn on_grid_tone_concentrates_on_its_subcarrier() {
        let q = Quantizer::new(Modulation::Qam64, ScaleMode::Fixed(DEFAULT_SCALE));
        let sym = q.quantize_body(&tone_phase(12.0));
        // The tone bin saturates near the outermost level; every other data
        // subcarrier sits at the minimum grid point (±1,±1) — zero is not a
        // 64-QAM point, so a √2 wideband floor is unavoidable.
        let d = bluefi_wifi::subcarriers::data_index_of_subcarrier(12).unwrap();
        let on = sym.points[d].abs();
        assert!(on >= 7.0, "on-tone magnitude {on}");
        for (i, p) in sym.points.iter().enumerate() {
            if i != d {
                assert!((p.abs() - 2f64.sqrt()).abs() < 1e-9, "off-tone {i}: {p:?}");
            }
        }
    }

    #[test]
    fn two_tone_split_lands_inside_the_grid() {
        // A tone midway between two subcarriers splits energy between them
        // — the paper's sizing argument for A: each neighbor lands near the
        // outermost level (their "32 of 35 units") WITHOUT clamping hard.
        let q = Quantizer::new(Modulation::Qam64, ScaleMode::Fixed(DEFAULT_SCALE));
        let sym = q.quantize_body(&tone_phase(12.5));
        let d12 = bluefi_wifi::subcarriers::data_index_of_subcarrier(12).unwrap();
        let d13 = bluefi_wifi::subcarriers::data_index_of_subcarrier(13).unwrap();
        for d in [d12, d13] {
            let m = sym.points[d].abs();
            assert!(m > 5.0 && m <= 7.0 * 2f64.sqrt() + 1e-9, "magnitude {m}");
        }
        // And the in-band quantization error is small.
        assert!(sym.in_band_error_db(12.5, 4.0) < -10.0, "{}", sym.in_band_error_db(12.5, 4.0));
    }

    #[test]
    fn residue_is_sum_of_per_subcarrier_minima() {
        // Quantizing each subcarrier to its nearest point is optimal: no
        // single substitution can lower the residue.
        let q = Quantizer::new(Modulation::Qam64, ScaleMode::Fixed(DEFAULT_SCALE));
        let phase: Vec<f64> = (0..64).map(|n| (n as f64 * 0.3).sin() * 2.0).collect();
        let sym = q.quantize_body(&phase);
        // Recompute the unquantized spectrum and check each point is the
        // argmin over a neighborhood of grid points.
        let mut buf: Vec<Cx> = phase.iter().map(|&p| Cx::expj(p) * sym.scale).collect();
        FftPlan::new(64).forward(&mut buf);
        for (i, &sc) in data_subcarriers().iter().enumerate() {
            let x = buf[bin_of_subcarrier(sc, 64)];
            let chosen = (x - sym.points[i]).norm_sq();
            for dre in [-2.0, 0.0, 2.0] {
                for dim in [-2.0, 0.0, 2.0] {
                    let alt = Cx { re: sym.points[i].re + dre, im: sym.points[i].im + dim };
                    if alt.re.abs() <= 7.0 && alt.im.abs() <= 7.0 {
                        assert!(
                            (x - alt).norm_sq() >= chosen - 1e-9,
                            "subcarrier {sc}: {alt:?} beats {:?}",
                            sym.points[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn higher_order_modulation_reduces_error() {
        // Sec 5.1: 256/1024-QAM quantize with less error. Scale A with the
        // constellation max so the signal occupies the same relative range,
        // and measure in-band (the wideband floor shrinks too, but in-band
        // is the receiver-relevant number).
        // Scale well inside every constellation's per-axis range so the
        // comparison isolates grid resolution (clamping would mask it).
        let err = |m: Modulation| {
            let a = 0.5 * DEFAULT_SCALE * m.max_level() as f64 / 7.0;
            Quantizer::new(m, ScaleMode::Fixed(a))
                .quantize_body(&tone_phase(12.5))
                .in_band_error_db(12.5, 4.0)
        };
        let e64 = err(Modulation::Qam64);
        let e256 = err(Modulation::Qam256);
        let e1024 = err(Modulation::Qam1024);
        assert!(e256 < e64 - 3.0, "64: {e64}, 256: {e256}");
        assert!(e1024 < e256 - 3.0, "256: {e256}, 1024: {e1024}");
    }

    #[test]
    fn dynamic_scale_is_no_worse_but_close() {
        let phase: Vec<f64> = (0..64).map(|n| (n as f64 * 0.21).cos() * 2.5).collect();
        let fixed = Quantizer::new(Modulation::Qam64, ScaleMode::Fixed(DEFAULT_SCALE))
            .quantize_body(&phase);
        let dynamic =
            Quantizer::new(Modulation::Qam64, ScaleMode::Dynamic).quantize_body(&phase);
        assert!(dynamic.error_db() <= fixed.error_db() + 1e-9);
        // The paper: "the performance difference is negligible".
        assert!(fixed.error_db() - dynamic.error_db() < 6.0);
    }

    #[test]
    fn quantized_points_are_on_grid() {
        let q = Quantizer::new(Modulation::Qam64, ScaleMode::Fixed(DEFAULT_SCALE));
        let sym = q.quantize_body(&tone_phase(-5.3));
        for p in &sym.points {
            assert_eq!(p.re, p.re.round());
            assert_eq!(p.im, p.im.round());
            assert_eq!((p.re as i64).abs() % 2, 1);
            assert_eq!((p.im as i64).abs() % 2, 1);
        }
    }
}
