//! Cumulative impairment staging (paper Sec 4.6, Fig 8).
//!
//! The paper isolates each WiFi-hardware impairment by generating waveforms
//! with the pipeline truncated at successive stages and transmitting them
//! from a USRP (which, unlike a COTS chip, can emit arbitrary IQ):
//!
//! 1. **Baseline** — the ideal GFSK waveform.
//! 2. **+CP** — the CP/windowing-compatible phase θ̂ (impairment I1).
//! 3. **+QAM** — θ̂ quantized per-subcarrier to the 64-QAM grid, with every
//!    subcarrier still free (impairment I2).
//! 4. **+Pilot/Null** — pilots and nulls overwritten with the standard's
//!    values (impairment I3).
//! 5. **+FEC** — the coded-bit stream re-encoded through the convolutional
//!    code, flipping the bits the encoder cannot realize (impairment I4).
//! 6. **+Header** — the complete PSDU through the full chip TX, preamble
//!    included.

use crate::pipeline::BlueFi;
use crate::qam::Quantizer;
use crate::telemetry::{self, Counter, SpanKind};
use bluefi_bt::gfsk::{modulate_iq, modulate_phase};
use bluefi_dsp::fft::{bin_of_subcarrier, fft_plan};
use bluefi_dsp::Cx;
use bluefi_wifi::channels::ChannelPlan;
use bluefi_wifi::ofdm::GuardInterval;
use bluefi_wifi::pilots::ht_pilot_values;
use bluefi_wifi::subcarriers::{data_subcarriers, FFT_SIZE, PILOT_SUBCARRIERS};
use bluefi_wifi::tx::{coded_bits, symbol_spectrum, waveform_from_spectra};
use bluefi_wifi::ChipModel;

/// The cumulative impairment stages of Fig 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Ideal GFSK (USRP arbitrary waveform).
    Baseline,
    /// + cyclic prefix / windowing compensation.
    Cp,
    /// + 64-QAM quantization of every subcarrier.
    Qam,
    /// + pilots and nulls overwritten.
    PilotNull,
    /// + FEC-realizable bit stream.
    Fec,
    /// + scrambler framing and the 802.11n preamble (the complete system).
    Header,
}

impl Stage {
    /// All stages in Fig 8's order.
    pub fn all() -> [Stage; 6] {
        [
            Stage::Baseline,
            Stage::Cp,
            Stage::Qam,
            Stage::PilotNull,
            Stage::Fec,
            Stage::Header,
        ]
    }

    /// The x-axis label the paper uses.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Baseline => "Baseline",
            Stage::Cp => "+CP",
            Stage::Qam => "+QAM",
            Stage::PilotNull => "+Pilot/Null",
            Stage::Fec => "+FEC",
            Stage::Header => "+Header",
        }
    }

    /// The telemetry span kind timing this stage's waveform generation.
    pub fn span_kind(self) -> SpanKind {
        match self {
            Stage::Baseline => SpanKind::StageBaseline,
            Stage::Cp => SpanKind::StageCp,
            Stage::Qam => SpanKind::StageQam,
            Stage::PilotNull => SpanKind::StagePilotNull,
            Stage::Fec => SpanKind::StageFec,
            Stage::Header => SpanKind::StageHeader,
        }
    }
}

/// Generates the waveform for `bt_bits` with impairments applied
/// cumulatively up to `stage`. The result is unnormalized IQ; the caller
/// scales it to the experiment's transmit power.
pub fn waveform_at_stage(
    bf: &BlueFi,
    bt_bits: &[bool],
    plan: ChannelPlan,
    seed: u8,
    stage: Stage,
) -> Vec<Cx> {
    let _sp = telemetry::span(stage.span_kind());
    telemetry::incr(Counter::StageWaveforms);
    let offset_hz = plan.tx_subcarrier * bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ;
    let offset_cps = offset_hz / bf.gfsk.sample_rate_hz;
    let mcs = bf.strategy.mcs();

    if stage == Stage::Baseline {
        return modulate_iq(bt_bits, &bf.gfsk, offset_hz);
    }

    // Stage >= Cp: build θ̂ and the per-symbol bodies.
    let phase = modulate_phase(bt_bits, &bf.gfsk, offset_hz);
    let theta_hat = bf.cp.make_compatible(&phase, offset_cps);
    // Stage contract: θ̂ spans whole OFDM symbols (CP + 64 body samples).
    bluefi_dsp::contract!(
        theta_hat.len() % bf.cp.block_len() == 0,
        "waveform_at_stage: θ̂ length {} is not a multiple of the {}-sample symbol",
        theta_hat.len(),
        bf.cp.block_len()
    );
    if stage == Stage::Cp {
        return theta_hat.iter().map(|&p| Cx::expj(p)).collect();
    }

    let bodies = bf.cp.strip_cp(&theta_hat);
    // Stage contract: CP stripping yields one 64-sample body per symbol.
    bluefi_dsp::contract!(
        bodies.len() == theta_hat.len() / bf.cp.block_len()
            && bodies.iter().all(|b| b.len() == FFT_SIZE),
        "waveform_at_stage: expected {} bodies of {FFT_SIZE} samples",
        theta_hat.len() / bf.cp.block_len()
    );
    let plan64 = fft_plan(FFT_SIZE);
    let quantizer = Quantizer::new(mcs.modulation, bf.scale);

    if stage == Stage::Qam {
        // Quantize EVERY bin to the grid (no pilots/nulls yet).
        let spectra: Vec<Vec<Cx>> = bodies
            .iter()
            .map(|b| {
                let mut buf: Vec<Cx> = b
                    .iter()
                    .map(|&p| Cx::expj(p) * default_scale(&bf.scale))
                    .collect();
                plan64.forward(&mut buf);
                buf.iter()
                    .map(|&x| bluefi_wifi::qam::quantize_point(x, mcs.modulation))
                    .collect()
            })
            .collect();
        return waveform_from_spectra(&spectra, GuardInterval::Short, true);
    }

    // Stage >= PilotNull: quantize data subcarriers, standard pilots/nulls.
    let symbols: Vec<_> = bodies.iter().map(|b| quantizer.quantize_body(b)).collect();
    if stage == Stage::PilotNull {
        let spectra: Vec<Vec<Cx>> = symbols
            .iter()
            .enumerate()
            .map(|(n, s)| spectrum_with_pilots(&s.points, mcs.modulation, n))
            .collect();
        return waveform_from_spectra(&spectra, GuardInterval::Short, true);
    }

    // Stage >= Fec: FEC reversal, re-encode, re-map.
    let (coded, weights) =
        crate::reversal::coded_stream(&symbols, mcs, plan.tx_subcarrier, &bf.weights);
    let rev = crate::reversal::reverse_fec(&coded, &weights, bf.strategy, plan.tx_subcarrier);
    if stage == Stage::Fec {
        let recoded = coded_from_scrambled(&rev.scrambled, mcs);
        let spectra: Vec<Vec<Cx>> = recoded
            .chunks_exact(mcs.coded_bits_per_symbol())
            .enumerate()
            .map(|(n, chunk)| symbol_spectrum(chunk, mcs, n))
            .collect();
        return waveform_from_spectra(&spectra, GuardInterval::Short, true);
    }

    // Stage::Header — the complete system through a (windowless) SDR chip
    // model so only the framing/preamble differs from +FEC.
    let syn = bf.synthesize_at(bt_bits, plan, seed);
    let chip = ChipModel::usrp(seed);
    // Return in waveform units comparable to the other stages: transmit at
    // the reference power and hand back the raw IQ.
    chip.transmit_with_seed(&syn.psdu, syn.mcs, 0.0, seed).iq
}

fn default_scale(mode: &crate::qam::ScaleMode) -> f64 {
    match mode {
        crate::qam::ScaleMode::Fixed(s) => *s,
        crate::qam::ScaleMode::Dynamic => crate::qam::DEFAULT_SCALE,
    }
}

fn spectrum_with_pilots(
    points: &[Cx],
    modulation: bluefi_wifi::Modulation,
    symbol_index: usize,
) -> Vec<Cx> {
    let mut spec = vec![Cx::ZERO; FFT_SIZE];
    for (d, &sc) in data_subcarriers().iter().enumerate() {
        spec[bin_of_subcarrier(sc, FFT_SIZE)] = points[d];
    }
    let pilot_scale = 1.0 / modulation.kmod();
    for (m, &sc) in PILOT_SUBCARRIERS.iter().enumerate() {
        spec[bin_of_subcarrier(sc, FFT_SIZE)] =
            Cx::from_re(ht_pilot_values(symbol_index)[m] * pilot_scale);
    }
    spec
}

/// Re-encodes a scrambled stream to its transmitted coded bits (the
/// waveform the chip will actually emit after the FEC stage).
fn coded_from_scrambled(scrambled: &[bool], mcs: bluefi_wifi::Mcs) -> Vec<bool> {
    coded_bits(scrambled, mcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_bt::ble::{adv_air_bits, AdvPdu, AdvPduType};
    use bluefi_bt::receiver::{GfskReceiver, ReceiverConfig};
    use bluefi_wifi::channels::plan_channel;

    fn bits() -> Vec<bool> {
        let pdu = AdvPdu {
            pdu_type: AdvPduType::AdvNonconnInd,
            adv_address: [9, 8, 7, 6, 5, 4],
            adv_data: (0..20).map(|i| i * 3).collect(),
            tx_add: false,
        };
        adv_air_bits(&pdu, 38)
    }

    fn receiver(plan: &bluefi_wifi::channels::ChannelPlan) -> GfskReceiver {
        GfskReceiver::new(ReceiverConfig {
            channel_offset_hz: plan.subcarrier
                * bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ,
            ..Default::default()
        })
    }

    #[test]
    fn every_stage_still_synchronizes_with_low_ber() {
        // With no channel noise, every cumulative stage must remain
        // receivable (the paper's Fig 8 shows graceful ~1 dB/stage RSSI
        // degradation, not failures). Our simplified discriminator keeps a
        // small residual BER, so assert sync + BER bound rather than
        // perfect CRC.
        use bluefi_dsp::bits::u64_to_bits_lsb;
        let bf = BlueFi::default();
        let plan = plan_channel(2.426e9).unwrap();
        let rx = receiver(&plan);
        let aa = u64_to_bits_lsb(bluefi_bt::ble::ADV_ACCESS_ADDRESS as u64, 32);
        let air = bits();
        for stage in Stage::all() {
            let wave = waveform_at_stage(&bf, &air, plan, 71, stage);
            let demod = rx.demodulate(&wave);
            let hit = rx
                .synchronize(&demod, &aa, air.len())
                .unwrap_or_else(|| panic!("stage {stage:?}: no sync"));
            let truth = &air[40..];
            let n = truth.len().min(hit.bits.len());
            let errs =
                truth[..n].iter().zip(&hit.bits[..n]).filter(|(a, b)| a != b).count();
            assert!(
                errs * 100 <= n * 3,
                "stage {stage:?}: {errs}/{n} bit errors"
            );
        }
    }

    #[test]
    fn stages_progressively_perturb_the_waveform() {
        // Each stage's waveform differs from the previous one.
        let bf = BlueFi::default();
        let plan = plan_channel(2.426e9).unwrap();
        let waves: Vec<Vec<Cx>> = Stage::all()
            .iter()
            .map(|&s| waveform_at_stage(&bf, &bits(), plan, 71, s))
            .collect();
        for w in waves.windows(2) {
            let n = w[0].len().min(w[1].len());
            let diff: f64 = (0..n).map(|i| (w[0][i] - w[1][i]).norm_sq()).sum();
            assert!(diff > 1e-6, "consecutive stages identical");
        }
    }

    #[test]
    fn baseline_is_constant_envelope_and_later_stages_are_not() {
        let bf = BlueFi::default();
        let plan = plan_channel(2.426e9).unwrap();
        let base = waveform_at_stage(&bf, &bits(), plan, 71, Stage::Baseline);
        for v in &base {
            assert!((v.abs() - 1.0).abs() < 1e-9);
        }
        let qam = waveform_at_stage(&bf, &bits(), plan, 71, Stage::Qam);
        let dev = qam
            .iter()
            .map(|v| (v.abs() - 1.0).abs())
            .fold(0.0f64, f64::max);
        assert!(dev > 0.01, "QAM stage should break the constant envelope");
    }

    #[test]
    fn in_band_distortion_grows_monotonically_enough() {
        // Measure in-band error vs the baseline through the receiver's
        // filter: later stages should not be dramatically cleaner than
        // earlier ones (the paper allows small non-monotonicity at +FEC).
        let bf = BlueFi::default();
        let plan = plan_channel(2.426e9).unwrap();
        let rx = receiver(&plan);
        let err_of = |stage: Stage| -> f64 {
            let wave = waveform_at_stage(&bf, &bits(), plan, 71, stage);
            let base = waveform_at_stage(&bf, &bits(), plan, 71, Stage::Baseline);
            let n = wave.len().min(base.len());
            let fw = rx.demodulate(&wave[..n].to_vec());
            let fb = rx.demodulate(&base[..n].to_vec());
            let e: f64 = fw
                .filtered
                .iter()
                .zip(&fb.filtered)
                .map(|(a, b)| (*a - *b).norm_sq())
                .sum();
            let p: f64 = fb.filtered.iter().map(|v| v.norm_sq()).sum();
            10.0 * (e / p).log10()
        };
        let cp = err_of(Stage::Cp);
        let qam = err_of(Stage::Qam);
        let pil = err_of(Stage::PilotNull);
        assert!(cp < -5.0, "CP err {cp} dB");
        assert!(qam >= cp - 1.0, "QAM ({qam}) cleaner than CP ({cp})?");
        assert!(pil >= qam - 1.0, "Pilot ({pil}) cleaner than QAM ({qam})?");
    }
}
