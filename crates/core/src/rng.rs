//! Self-hosted, seedable randomness for the whole workspace.
//!
//! The build environment is hermetic — no registry access — so the
//! simulators cannot lean on the `rand` crate. This module provides the
//! small API surface the repo actually uses: a [`StdRng`] built on
//! xoshiro256++ seeded through SplitMix64, uniform integer/float ranges,
//! Bernoulli draws, and a Box–Muller standard-normal sampler for the
//! AWGN/fading channel. Everything is deterministic given a seed, which is
//! what the PER/fading experiments need to stay reproducible.

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Used to expand a 64-bit seed into the 256-bit xoshiro state (the
/// seeding procedure recommended by the xoshiro authors) and exposed for
/// tests against the reference implementation's vectors.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeding support (the `rand`-compatible entry point).
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256++.
///
/// Fast, 256 bits of state, passes BigCrush; not cryptographic (nothing
/// here needs that).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Types [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> bool {
        // Top bit: xoshiro's low bits are its weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

/// Half-open ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws a uniform value in the range. Panics on an empty range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        // May round to `end` for extreme spans; fold back to stay half-open.
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v < self.end { v } else { self.start }
    }
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_below(span) as $t)
            }
        }
    )*};
}
sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.next_below(span) as $t)
            }
        }
    )*};
}
sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// The generator interface: one required method, everything else derived.
pub trait Rng {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform in [0, 1) with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [0, `bound`) without modulo bias (Lemire's method with
    /// rejection). Panics when `bound` is zero.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = (self.next_u64() as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// One uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A standard-normal sample via Box–Muller (one of the pair; the
    /// cosine branch).
    fn gen_normal(&mut self) -> f64 {
        let u1 = self.gen_range(1e-12..1.0);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // First outputs of the reference C splitmix64 with seed 0.
        let mut st = 0u64;
        assert_eq!(splitmix64(&mut st), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut st), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut st), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn identically_seeded_streams_agree() {
        let mut a = StdRng::seed_from_u64(0xB1DEF1);
        let mut b = StdRng::seed_from_u64(0xB1DEF1);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // And a different seed diverges immediately.
        let mut c = StdRng::seed_from_u64(0xB1DEF2);
        assert_ne!(StdRng::seed_from_u64(0xB1DEF1).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_f64_is_in_unit_interval_and_centered() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = rng.gen_range(5usize..17);
            assert!((5..17).contains(&u));
            let i = rng.gen_range(-8i32..9);
            assert!((-8..9).contains(&i));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..16)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "gen_bool(0.3) ran at {p}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    /// Golden outputs for fixed seeds. Seed 0 matches the published
    /// xoshiro256++ reference stream when the state is expanded with
    /// SplitMix64; the others pin our exact seeding path so any change
    /// to the generator (which would silently reshuffle every fixed-seed
    /// simulation in the repo) fails loudly here.
    #[test]
    fn golden_streams_for_fixed_seeds() {
        let cases: [(u64, [u64; 4]); 3] = [
            (
                0,
                [0x53175D61490B23DF, 0x61DA6F3DC380D507, 0x5C0FDF91EC9A7BFC, 0x02EEBF8C3BBE5E1A],
            ),
            (
                42,
                [0xD0764D4F4476689F, 0x519E4174576F3791, 0xFBE07CFB0C24ED8C, 0xB37D9F600CD835B8],
            ),
            (
                0xDEADBEEF,
                [0x0C520EB8FEA98EDE, 0x2B74A6338B80E0E2, 0xBE238770C3795322, 0x5F235F98A244EA97],
            ),
        ];
        for (seed, expect) in cases {
            let mut rng = StdRng::seed_from_u64(seed);
            for (i, want) in expect.into_iter().enumerate() {
                assert_eq!(rng.next_u64(), want, "seed {seed:#x}, draw {i}");
            }
        }
    }

    #[test]
    fn golden_f64_stream() {
        let mut rng = StdRng::seed_from_u64(9);
        let got: Vec<f64> = (0..3).map(|_| rng.next_f64()).collect();
        assert_eq!(got, vec![0.5990316791291411, 0.4297364011687632, 0.19864982391454744]);
    }

    #[test]
    fn gaussian_matches_standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000usize;
        let (mut sum, mut sum_sq, mut in_one_sigma) = (0.0f64, 0.0f64, 0usize);
        for _ in 0..n {
            let x = rng.gen_normal();
            sum += x;
            sum_sq += x * x;
            if x.abs() < 1.0 {
                in_one_sigma += 1;
            }
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "gaussian mean drifted to {mean}");
        assert!((var - 1.0).abs() < 0.02, "gaussian variance drifted to {var}");
        // P(|X| < 1) for a standard normal is ~0.6827.
        let frac = in_one_sigma as f64 / n as f64;
        assert!((frac - 0.6827).abs() < 0.01, "one-sigma mass was {frac}");
    }

    #[test]
    fn identically_seeded_generators_stay_in_lockstep_across_types() {
        let mut a = StdRng::seed_from_u64(0x1234_5678);
        let mut b = StdRng::seed_from_u64(0x1234_5678);
        for _ in 0..500 {
            assert_eq!(a.gen::<u32>(), b.gen::<u32>());
            assert_eq!(a.gen_range(-40i32..40), b.gen_range(-40i32..40));
            assert_eq!(a.next_f64().to_bits(), b.next_f64().to_bits());
            assert_eq!(a.gen_normal().to_bits(), b.gen_normal().to_bits());
        }
    }
}
