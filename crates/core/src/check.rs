//! An in-tree randomized-property harness — the hermetic replacement for
//! `proptest`.
//!
//! Each property runs a fixed number of cases against inputs drawn from a
//! deterministic per-property seed (FNV-1a of the property name), so a
//! failure reproduces exactly on every machine. There is no shrinking;
//! instead the failing case's generated input is printed in full along
//! with the seed and case index.
//!
//! Environment knobs:
//! * `BLUEFI_PROP_CASES` — cases per property (default 64).
//! * `BLUEFI_PROP_SEED` — XORed into every property's seed, to explore
//!   fresh input space in scheduled runs without losing reproducibility.

use crate::rng::{Rng, SeedableRng, StdRng};
use std::fmt::Debug;
use std::ops::Range;

/// Cases per property, honoring `BLUEFI_PROP_CASES`.
pub fn default_cases() -> usize {
    std::env::var("BLUEFI_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn base_seed(name: &str) -> u64 {
    let user = std::env::var("BLUEFI_PROP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0u64);
    fnv1a(name) ^ user
}

/// Runs `prop` against `default_cases()` inputs drawn by `gen`.
///
/// Panics with the property name, seed, case index and the full failing
/// input when `prop` returns `Err`.
pub fn check<T: Debug>(
    name: &str,
    gen: impl FnMut(&mut StdRng) -> T,
    prop: impl FnMut(&T) -> Result<(), String>,
) {
    check_n(name, default_cases(), gen, prop)
}

/// [`check`] with an explicit case count (for expensive properties).
pub fn check_n<T: Debug>(
    name: &str,
    cases: usize,
    mut gen: impl FnMut(&mut StdRng) -> T,
    mut prop: impl FnMut(&T) -> Result<(), String>,
) {
    let seed = base_seed(name);
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..cases {
        let input = gen(&mut rng);
        if let Err(msg) = prop(&input) {
            // lint: allow(panic) panicking with the counterexample IS the property harness's job
            panic!(
                "property `{name}` failed at case {case}/{cases} (seed {seed:#018x})\n\
                 input: {input:?}\n{msg}"
            );
        }
    }
}

/// `n` draws from `f`, with `n` uniform in `len` — the `vec(strategy, ..)`
/// combinator.
pub fn vec_with<T>(
    rng: &mut StdRng,
    len: Range<usize>,
    mut f: impl FnMut(&mut StdRng) -> T,
) -> Vec<T> {
    let n = if len.start + 1 == len.end { len.start } else { rng.gen_range(len) };
    (0..n).map(|_| f(rng)).collect()
}

/// A random bit vector with length drawn from `len`.
pub fn bools(rng: &mut StdRng, len: Range<usize>) -> Vec<bool> {
    vec_with(rng, len, |r| r.gen())
}

/// A random byte vector with length drawn from `len`.
pub fn bytes(rng: &mut StdRng, len: Range<usize>) -> Vec<u8> {
    vec_with(rng, len, |r| r.gen())
}

/// A vector of uniforms from `range`, with length drawn from `len`.
pub fn f64s(rng: &mut StdRng, range: Range<f64>, len: Range<usize>) -> Vec<f64> {
    vec_with(rng, len, |r| r.gen_range(range.clone()))
}

/// Asserts a condition inside a [`check`] property; evaluates to
/// `Err(String)` (propagated with `?` or `return`) when it fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`check`] property, printing both sides on
/// failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0;
        check_n("always_true", 17, |r| r.gen::<u32>(), |_| {
            ran += 1;
            Ok(())
        });
        assert_eq!(ran, 17);
    }

    #[test]
    fn failing_property_reports_input_and_seed() {
        let caught = std::panic::catch_unwind(|| {
            check_n("fails_on_big", 1000, |r| r.gen_range(0u32..100), |&v| {
                prop_assert!(v < 90, "saw {v}");
                Ok(())
            });
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("fails_on_big"), "{msg}");
        assert!(msg.contains("input:"), "{msg}");
        assert!(msg.contains("seed"), "{msg}");
    }

    #[test]
    fn same_name_draws_same_inputs() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        check_n("stable_stream", 10, |r| r.gen::<u64>(), |&v| {
            a.push(v);
            Ok(())
        });
        check_n("stable_stream", 10, |r| r.gen::<u64>(), |&v| {
            b.push(v);
            Ok(())
        });
        assert_eq!(a, b);
        let mut c = Vec::new();
        check_n("other_stream", 10, |r| r.gen::<u64>(), |&v| {
            c.push(v);
            Ok(())
        });
        assert_ne!(a, c);
    }

    #[test]
    fn generator_helpers_respect_lengths() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!((3..7).contains(&bools(&mut rng, 3..7).len()));
            assert!(bytes(&mut rng, 0..1).is_empty());
            let v = f64s(&mut rng, -1.0..1.0, 5..6);
            assert_eq!(v.len(), 5);
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }
}
