//! A safe, std-only parallel batch engine for the synthesis pipeline.
//!
//! BlueFi's experiments are embarrassingly parallel: thousands of
//! independent (packet, channel, seed) trials, each a pure function of its
//! inputs. This module provides the minimal machinery to exploit that —
//! a scoped-thread chunked map with **per-worker scratch arenas** — without
//! any external dependency (the workspace is hermetic; there is no rayon).
//!
//! Design rules:
//!
//! * **Deterministic**: items are split into contiguous index-ordered
//!   chunks, one per worker, and results are reassembled in input order —
//!   the output is byte-identical to the sequential map for any worker
//!   count (pipeline purity is what makes the per-item results identical;
//!   this module guarantees the ordering).
//! * **Zero steady-state allocation inside a worker**: each worker owns one
//!   scratch built by the caller's factory, reused across every item of its
//!   chunk (see [`crate::pipeline::SynthesisScratch`]).
//! * **No locks**: workers share nothing mutable; results travel back
//!   through the scoped join handles.
//!
//! The worker count defaults to [`std::thread::available_parallelism`] and
//! can be pinned with the `BLUEFI_THREADS` environment variable (`1`
//! degrades to a plain sequential loop in the calling thread).

use crate::pipeline::{BlueFi, Synthesis, SynthesisScratch};
use crate::telemetry::{self, Counter, Gauge, SpanKind};
use crate::template::{CachedEngine, CachedScratch};
use bluefi_wifi::channels::ChannelPlan;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

/// Number of CPUs the host exposes ([`std::thread::available_parallelism`],
/// falling back to 1 when unavailable).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The worker count pinned by the `BLUEFI_THREADS` environment variable,
/// if it is set to a positive integer.
pub fn env_threads() -> Option<usize> {
    std::env::var("BLUEFI_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The worker count the batch engine will use: [`env_threads`] if set,
/// otherwise [`host_cpus`].
pub fn worker_count() -> usize {
    env_threads().unwrap_or_else(host_cpus)
}

/// Clamps a requested worker count to [`host_cpus`] — spawning more
/// workers than CPUs only adds scheduler churn (the committed
/// `BENCH_runtime.json` once showed 0.92× "speedups" from exactly that).
/// An explicit `BLUEFI_THREADS` override wins unclamped, so deliberate
/// oversubscription experiments stay possible. Every clamp decision is
/// recorded on the [`Counter::ParWorkersClamped`] telemetry counter.
pub fn clamped_workers(requested: usize) -> usize {
    let requested = requested.max(1);
    if env_threads().is_some() {
        return requested;
    }
    let cap = host_cpus();
    if requested > cap {
        telemetry::incr(Counter::ParWorkersClamped);
        cap
    } else {
        requested
    }
}

/// Parallel map with per-worker scratch state and an explicit worker count.
///
/// `new_scratch` runs once per worker (in that worker's thread); `f` is
/// called as `f(&mut scratch, index, &item)` with `index` the item's
/// position in `items`. Results come back in input order. A panic in any
/// worker propagates to the caller.
pub fn par_map_scratch_n<T, U, S, NS, F>(
    items: &[T],
    n_workers: usize,
    new_scratch: NS,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    NS: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let n_workers = n_workers.max(1).min(items.len().max(1));
    telemetry::incr(Counter::ParFanouts);
    telemetry::add(Counter::ParItems, items.len() as u64);
    telemetry::add(Counter::ParChunks, n_workers as u64);
    telemetry::gauge_max(Gauge::ParMaxWorkers, n_workers as u64);
    if n_workers <= 1 {
        let _busy = telemetry::span(SpanKind::ParWorkerBusy);
        let mut scratch = new_scratch();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect();
    }
    // Timing is captured only when recording is on, so the off path keeps
    // its exact pre-telemetry shape (no clock reads in workers).
    let record = telemetry::counters_on();
    let fanout_start = Instant::now();
    let chunk = items.len().div_ceil(n_workers);
    let mut out: Vec<U> = Vec::with_capacity(items.len());
    let mut busy_times: Vec<Duration> = Vec::with_capacity(if record { n_workers } else { 0 });
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_workers);
        for (w, chunk_items) in items.chunks(chunk).enumerate() {
            let base = w * chunk;
            let f = &f;
            let new_scratch = &new_scratch;
            handles.push(scope.spawn(move || {
                // Tag this worker's trace events (1-based; 0 is main) so
                // per-packet traces attribute to the thread that ran them.
                let _tag = telemetry::trace::worker_scope(w as u32 + 1);
                let t0 = record.then(Instant::now);
                let mut scratch = new_scratch();
                let part = chunk_items
                    .iter()
                    .enumerate()
                    .map(|(j, t)| f(&mut scratch, base + j, t))
                    .collect::<Vec<U>>();
                (part, t0.map(|t| t.elapsed()))
            }));
        }
        // Join in spawn order: concatenating contiguous chunks reproduces
        // the input order exactly.
        for h in handles {
            match h.join() {
                Ok((part, busy)) => {
                    if let Some(b) = busy {
                        busy_times.push(b);
                    }
                    out.extend(part);
                }
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    if record {
        // A worker's idle share is the fan-out wall time it did not spend
        // computing its chunk — the load-imbalance signal.
        let wall = fanout_start.elapsed();
        for b in busy_times {
            telemetry::record_duration(SpanKind::ParWorkerBusy, b);
            telemetry::record_duration(SpanKind::ParWorkerIdle, wall.saturating_sub(b));
        }
    }
    out
}

/// [`par_map_scratch_n`] at the ambient [`worker_count`].
pub fn par_map_scratch<T, U, S, NS, F>(items: &[T], new_scratch: NS, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    NS: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    par_map_scratch_n(items, worker_count(), new_scratch, f)
}

/// Stateless parallel map at the ambient [`worker_count`] — results in
/// input order.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_scratch(items, || (), |(), i, t| f(i, t))
}

/// One batch synthesis job: packet bits, a pinned channel plan, and the
/// scrambler seed.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Bluetooth packet air bits.
    pub bits: Vec<bool>,
    /// The channel plan to synthesize against.
    pub plan: ChannelPlan,
    /// Scrambler seed the chip will use.
    pub seed: u8,
}

/// Batched synthesis over a [`BlueFi`] configuration: fans independent
/// trials out over [`worker_count`] threads, giving each worker its own
/// [`SynthesisScratch`] so every trial after a worker's first is
/// allocation-free in the synthesis kernel.
#[derive(Debug, Clone, Copy)]
pub struct SynthesisBatch<'a> {
    bf: &'a BlueFi,
    n_workers: usize,
}

impl<'a> SynthesisBatch<'a> {
    /// A batch engine at the ambient [`worker_count`].
    pub fn new(bf: &'a BlueFi) -> SynthesisBatch<'a> {
        SynthesisBatch { bf, n_workers: worker_count() }
    }

    /// Pins the worker count (used by the determinism tests and the
    /// throughput profile).
    pub fn with_workers(bf: &'a BlueFi, n_workers: usize) -> SynthesisBatch<'a> {
        SynthesisBatch { bf, n_workers: n_workers.max(1) }
    }

    /// The worker count this batch will use.
    pub fn workers(&self) -> usize {
        self.n_workers
    }

    /// Synthesizes every job, in parallel, results in job order.
    pub fn synthesize(&self, jobs: &[BatchJob]) -> Vec<Synthesis> {
        self.run(jobs, |bf, scratch, _, job| {
            bf.synthesize_at_with(&job.bits, job.plan, job.seed, scratch).clone()
        })
    }

    /// Synthesizes every job through a [`CachedEngine`], in parallel,
    /// results in job order. Cache-eligible jobs take the template patch
    /// path (first user of a key builds the template; the shared store
    /// serves every later worker); ineligible jobs fall through to the
    /// cold pipeline. The engine's configuration governs — this batch only
    /// contributes its worker count — and because patched results are
    /// bit-exact equal to cold synthesis, the output is byte-identical to
    /// [`SynthesisBatch::synthesize`] on `engine.config()` for any worker
    /// count and any cache state.
    pub fn synthesize_cached(&self, engine: &CachedEngine, jobs: &[BatchJob]) -> Vec<Synthesis> {
        par_map_scratch_n(jobs, self.n_workers, CachedScratch::new, |s, _, job| {
            engine.synthesize_at_with(&job.bits, job.plan, job.seed, s).clone()
        })
    }

    /// Generic trial runner: `f(config, worker_scratch, index, &item)` per
    /// item, fanned out with one [`SynthesisScratch`] per worker, results in
    /// input order. This is the shape every experiment loop reduces to —
    /// synthesize, push through a channel/receiver model, score.
    pub fn run<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&BlueFi, &mut SynthesisScratch, usize, &T) -> U + Sync,
    {
        let bf = self.bf;
        par_map_scratch_n(items, self.n_workers, SynthesisScratch::new, |s, i, t| {
            f(bf, s, i, t)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_every_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for n in [1, 2, 3, 8, 16, 97, 200] {
            let got = par_map_scratch_n(&items, n, || (), |(), _, &x| x * x + 1);
            assert_eq!(got, expect, "workers {n}");
        }
    }

    #[test]
    fn scratch_is_per_worker_and_reused() {
        // Each worker's scratch counts the items it saw; totals must cover
        // every item exactly once.
        let items: Vec<usize> = (0..40).collect();
        let got = par_map_scratch_n(&items, 4, || 0usize, |seen, _, &x| {
            *seen += 1;
            (x, *seen)
        });
        let total_items = got.len();
        assert_eq!(total_items, 40);
        // Within one worker's contiguous chunk the counter is strictly
        // increasing from 1.
        for w in 0..4 {
            let chunk = &got[w * 10..(w + 1) * 10];
            for (j, &(_, seen)) in chunk.iter().enumerate() {
                assert_eq!(seen, j + 1, "worker {w} item {j}");
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u32> = par_map(&[] as &[u32], |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let r = std::panic::catch_unwind(|| {
            par_map_scratch_n(&items, 2, || (), |(), _, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn cached_batch_matches_cold_batch_for_every_worker_count() {
        use crate::pipeline::PhaseMode;
        use crate::reversal::DecodeStrategy;
        use bluefi_wifi::channels::plan_channel;

        let bf = BlueFi {
            strategy: DecodeStrategy::Realtime,
            phase: PhaseMode::Anchored,
            ..Default::default()
        };
        let plan = plan_channel(2.426e9).unwrap();
        // A beacon fleet: one payload class, rotating counter byte — so the
        // batch is one miss plus all hits on a shared template.
        let jobs: Vec<BatchJob> = (0..12u8)
            .map(|c| {
                let mut bits = vec![false; 1992];
                for (i, b) in bits.iter_mut().enumerate() {
                    *b = (i as u8).wrapping_mul(37) & 1 == 1;
                }
                bits[1900 + c as usize % 8] ^= true;
                BatchJob { bits, plan, seed: 71 }
            })
            .collect();
        let cold = SynthesisBatch::with_workers(&bf, 1).synthesize(&jobs);
        for n in [1, 2, 4] {
            let engine = CachedEngine::new(bf.clone());
            let got = SynthesisBatch::with_workers(&bf, n).synthesize_cached(&engine, &jobs);
            assert_eq!(got.len(), cold.len());
            for (g, w) in got.iter().zip(&cold) {
                assert_eq!(g.psdu, w.psdu, "workers {n}");
                assert_eq!(g.flips, w.flips, "workers {n}");
                assert_eq!(g.forced_bits, w.forced_bits, "workers {n}");
            }
        }
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn clamped_workers_caps_at_host_cpus() {
        let cap = host_cpus();
        // An explicit BLUEFI_THREADS in the environment opts out of the
        // clamp entirely; the cap only applies to the default policy.
        if env_threads().is_none() {
            assert_eq!(clamped_workers(cap + 4), cap);
            assert_eq!(clamped_workers(cap), cap);
        }
        assert_eq!(clamped_workers(0), 1);
        assert_eq!(clamped_workers(1), 1);
    }
}
