//! Integration tests for the telemetry recorder: histogram edge cases
//! (empty, single-sample, saturation, merge order-independence) and the
//! allocation-probe proof that steady-state recording — enabled at every
//! level, and disabled — performs zero heap allocations per packet.
//!
//! The recorder's level and counters are process-global, so every test
//! that touches them serializes on [`lock`] and restores `Level::Off`.

use bluefi_core::json::ToJson;
use bluefi_core::pipeline::{BlueFi, PhaseMode, SynthesisScratch};
use bluefi_core::reversal::DecodeStrategy;
use bluefi_core::telemetry::{self, Counter, Histogram, Level, SpanKind};
use bluefi_core::template::{CachedEngine, CachedScratch};
use bluefi_dsp::contracts;
use bluefi_wifi::channels::plan_channel;
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn empty_histogram_reports_nothing() {
    let h = Histogram::new();
    assert!(h.is_empty());
    assert_eq!(h.mean(), None);
    assert_eq!(h.percentile(50.0), None);
    assert_eq!(h.percentile(99.9), None);
    // The JSON view renders explicit nulls, not zeros, for an empty
    // histogram — downstream tooling must be able to tell "no samples"
    // from "samples of zero".
    let rendered = h.to_json().render();
    assert!(rendered.contains("\"count\":0"), "{rendered}");
    assert!(rendered.contains("\"mean\":null"), "{rendered}");
    assert!(rendered.contains("\"p50\":null"), "{rendered}");
}

#[test]
fn single_sample_is_exact_at_every_percentile() {
    let mut h = Histogram::new();
    h.record(42);
    // Log2 buckets alone would report the bucket upper bound (63); the
    // [min, max] envelope clamp makes a single sample exact everywhere.
    for p in [0.0, 1.0, 50.0, 90.0, 99.0, 100.0] {
        assert_eq!(h.percentile(p), Some(42), "p{p}");
    }
    assert_eq!(h.mean(), Some(42.0));
    assert_eq!((h.min, h.max, h.count, h.sum), (42, 42, 1, 42));
}

#[test]
fn top_bucket_saturates_instead_of_dropping() {
    let mut h = Histogram::new();
    let huge = 1u64 << 62; // beyond the 40-bucket ladder
    h.record(huge);
    h.record(u64::MAX);
    h.record(u64::MAX);
    assert_eq!(h.count, 3);
    assert_eq!(h.sum, u64::MAX, "sum saturates rather than wrapping");
    assert_eq!(h.max, u64::MAX);
    assert_eq!(h.min, huge);
    // All three landed in the saturating top bucket; percentiles stay
    // inside the exact envelope.
    assert_eq!(h.buckets[telemetry::N_BUCKETS - 1], 3);
    let p50 = h.percentile(50.0).unwrap();
    assert!((huge..=u64::MAX).contains(&p50));
}

#[test]
fn merge_is_order_independent() {
    // Deterministic value stream (splitmix-style) — no clocks, no rng dep.
    let values: Vec<u64> = (0u64..257)
        .map(|i| {
            let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xBF58_476D);
            z ^= z >> 30;
            z.wrapping_mul(0x94D0_49BB_1331_11EB) >> (i % 48)
        })
        .collect();
    // Reference: one histogram fed sequentially.
    let mut whole = Histogram::new();
    for &v in &values {
        whole.record(v);
    }
    // Partition into per-"worker" histograms, then fold in several orders.
    let parts: Vec<Histogram> = values
        .chunks(64)
        .map(|chunk| {
            let mut h = Histogram::new();
            for &v in chunk {
                h.record(v);
            }
            h
        })
        .collect();
    let fold = |order: &[usize]| {
        let mut acc = Histogram::new();
        for &i in order {
            acc.merge(&parts[i]);
        }
        acc
    };
    let n = parts.len();
    let forward = fold(&(0..n).collect::<Vec<_>>());
    let reverse = fold(&(0..n).rev().collect::<Vec<_>>());
    let interleaved = fold(&(0..n).map(|i| (i * 3) % n).collect::<Vec<_>>());
    // Bit-identical in every order — the same determinism guarantee the
    // batch engine makes for synthesis results.
    assert_eq!(forward, whole);
    assert_eq!(reverse, whole);
    assert_eq!(interleaved, whole);
}

#[test]
fn disabled_recorder_is_inert() {
    let _g = lock();
    telemetry::set_level(Level::Off);
    telemetry::reset();
    telemetry::incr(Counter::PacketsSynthesized);
    telemetry::add(Counter::SymbolsProcessed, 99);
    {
        let _sp = telemetry::span(SpanKind::Synthesize);
    }
    let snap = telemetry::snapshot();
    assert_eq!(snap.counter(Counter::PacketsSynthesized), 0);
    assert_eq!(snap.counter(Counter::SymbolsProcessed), 0);
    assert!(snap.span_stat(SpanKind::Synthesize).is_none());
    assert!(snap.events.is_empty());
}

/// The acceptance criterion: steady-state synthesis performs zero heap
/// allocations per packet with telemetry recording enabled (counters,
/// full spans, and causal traces) *and* disabled. The probe self-reports
/// from the scratch buffers, the span ring, and the trace rings; it only
/// counts in debug+contracts builds, which is what `cargo test` runs.
#[test]
fn steady_state_allocs_are_zero_at_every_level() {
    let _g = lock();
    let bf = BlueFi::default();
    let plan = plan_channel(2.426e9).expect("advertising channel plans");
    let bits: Vec<bool> = (0..368).map(|i| i % 5 == 0 || i % 11 == 3).collect();
    for level in [Level::Off, Level::Counters, Level::Spans, Level::Trace] {
        telemetry::set_level(level);
        telemetry::reset();
        let mut scratch = SynthesisScratch::new();
        // Warm-up: grow scratch capacities and (at Spans) the event ring.
        bf.synthesize_at_with(&bits, plan, 71, &mut scratch);
        bf.synthesize_at_with(&bits, plan, 71, &mut scratch);
        contracts::probe_reset();
        for _ in 0..8 {
            bf.synthesize_at_with(&bits, plan, 71, &mut scratch);
        }
        let allocs = contracts::probe_count();
        if contracts::enabled() {
            assert_eq!(allocs, 0, "level {:?} must not allocate after warm-up", level);
        }
        // While recording, the instrumentation must actually have fired.
        let snap = telemetry::snapshot();
        if level >= Level::Counters {
            assert_eq!(snap.counter(Counter::PacketsSynthesized), 10);
            assert!(snap.counter(Counter::SymbolsProcessed) > 0);
        }
        if level >= Level::Spans {
            let total = snap.span_stat(SpanKind::Synthesize).expect("synthesize span");
            assert_eq!(total.hist.count, 10);
            // Every pipeline phase reported under the total.
            for kind in SpanKind::pipeline_phases() {
                let stat = snap.span_stat(kind).expect("phase span");
                assert_eq!(stat.hist.count, 10, "{}", kind.name());
                assert!(stat.hist.sum <= total.hist.sum, "{}", kind.name());
            }
            assert!(!snap.events.is_empty());
        }
    }
    telemetry::set_level(Level::Off);
    telemetry::reset();
}

/// The template-cache acceptance criterion: a cache-hit packet performs
/// zero heap allocations in steady state, at every telemetry level. The
/// warm-up loop runs the *same* mutation set the probe measures — the flip
/// list's capacity depends on the payload, so a fresh mutation could
/// legitimately grow it; the steady-state claim is about a stable fleet.
#[test]
fn cache_hit_steady_state_allocs_are_zero() {
    let _g = lock();
    let fleet_bf = BlueFi {
        strategy: DecodeStrategy::Realtime,
        phase: PhaseMode::Anchored,
        ..Default::default()
    };
    let plan = plan_channel(2.426e9).expect("advertising channel plans");
    let base: Vec<bool> = (0..1992).map(|i| i % 5 == 0 || i % 11 == 3).collect();
    // A beacon fleet: eight counter values in the last payload byte.
    let fleet: Vec<Vec<bool>> = (0..8u8)
        .map(|c| {
            let mut bits = base.clone();
            for bit in 0..8 {
                bits[1976 + bit] ^= c >> bit & 1 == 1;
            }
            bits
        })
        .collect();
    for level in [Level::Off, Level::Counters, Level::Spans, Level::Trace] {
        telemetry::set_level(level);
        telemetry::reset();
        // A fresh engine per level so the miss/hit ledger starts clean.
        let engine = CachedEngine::new(fleet_bf.clone());
        let mut scratch = CachedScratch::new();
        // Warm-up: build the template (miss) and patch every fleet member
        // once, growing every scratch buffer to its steady-state capacity.
        for bits in &fleet {
            engine.synthesize_at_with(bits, plan, 71, &mut scratch);
            engine.synthesize_at_with(bits, plan, 71, &mut scratch);
        }
        contracts::probe_reset();
        for bits in &fleet {
            engine.synthesize_at_with(bits, plan, 71, &mut scratch);
        }
        let allocs = contracts::probe_count();
        if contracts::enabled() {
            assert_eq!(allocs, 0, "level {:?} cache hits must not allocate", level);
        }
        if level >= Level::Counters {
            let snap = telemetry::snapshot();
            assert_eq!(snap.counter(Counter::TemplateHit), 8 + 15);
            assert_eq!(snap.counter(Counter::TemplateMiss), 1);
            assert_eq!(snap.counter(Counter::TemplateBypass), 0);
            assert!(telemetry::gauge(telemetry::Gauge::TemplateBytesResident) > 0);
        }
        if level >= Level::Spans {
            let snap = telemetry::snapshot();
            let patch = snap.span_stat(SpanKind::TemplatePatch).expect("patch span");
            assert_eq!(patch.hist.count, 8 + 15);
        }
    }
    telemetry::set_level(Level::Off);
    telemetry::reset();
}
