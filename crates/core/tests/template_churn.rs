//! CLOCK eviction under concurrent churn: several threads hammer one
//! small-capacity `CachedEngine` with a mix of hot (hit) and rotating
//! cold (miss → insert → evict) keys, asserting the resident-bytes
//! accounting never exceeds the configured capacity and the hit / miss /
//! evict / bypass counters reconcile exactly with the work submitted.
//!
//! The test lives in its own integration binary: it flips the process-wide
//! telemetry level and reads global counters, so it must not share a
//! process with other telemetry-sensitive tests.

use bluefi_core::telemetry::{self, Counter, Gauge, Level};
use bluefi_core::{BlueFi, CachedEngine, CachedScratch, DecodeStrategy, PhaseMode};
use bluefi_wifi::channels::plan_channel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Mirrors `template.rs`'s private shard count: the byte budget divides
/// across 16 shards, so per-shard budgets (and with them the
/// never-exceeds-capacity invariant) scale from the total below.
const STORE_SHARDS: usize = 16;

/// Distinct template keys (seed-varied) — more keys than shards, so some
/// shards must hold two contenders and evict under CLOCK.
const KEYS: usize = 24;

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 24;

fn fleet_bf() -> BlueFi {
    BlueFi {
        strategy: DecodeStrategy::Realtime,
        phase: PhaseMode::Anchored,
        ..Default::default()
    }
}

fn churn_bits() -> Vec<bool> {
    (0..640).map(|i| (i * 29) % 7 < 3).collect()
}

#[test]
fn clock_eviction_survives_concurrent_churn() {
    telemetry::set_level(Level::Counters);
    telemetry::reset();

    let plan = plan_channel(2412e6).expect("BT channel 10 plans");
    let bits = churn_bits();

    // Measure one template's footprint on an unbounded engine, then build
    // the real store with room for ~1.5 templates per shard: every shard
    // fits one resident template inside budget (so the capacity bound is
    // a true invariant, not the oversized-admission escape hatch) but two
    // contenders in one shard force a CLOCK eviction.
    let probe = CachedEngine::new(fleet_bf());
    let mut scratch = CachedScratch::new();
    // First call on a fresh scratch bypasses (the anchored GFSK table
    // isn't warm yet) and deposits nothing; the second is the real miss.
    probe.synthesize_at_with(&bits, plan, 1, &mut scratch);
    probe.synthesize_at_with(&bits, plan, 1, &mut scratch);
    let unit = probe.store().bytes_resident();
    assert!(unit > 0, "probe build must deposit a template");

    let capacity = unit * STORE_SHARDS * 3 / 2;
    let engine = Arc::new(CachedEngine::with_capacity(fleet_bf(), capacity));
    telemetry::reset(); // drop the probe's counters; churn starts clean

    let over_capacity = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = Arc::clone(&engine);
            let over_capacity = Arc::clone(&over_capacity);
            let bits = bits.clone();
            scope.spawn(move || {
                let mut scratch = CachedScratch::new();
                for op in 0..OPS_PER_THREAD {
                    // Every third op revisits the thread's hot seed (hits
                    // unless churn evicted it); the rest rotate through
                    // the cold key space (misses + evictions). Whitening
                    // seeds are nonzero 7-bit values, hence the 1-based
                    // range.
                    let seed = if op % 3 == 0 {
                        (t + 1) as u8
                    } else {
                        (1 + (t * OPS_PER_THREAD + op) % KEYS) as u8
                    };
                    engine.synthesize_at_with(&bits, plan, seed, &mut scratch);
                    // The capacity bound must hold at every observable
                    // instant, not just at quiescence.
                    if engine.store().bytes_resident() > capacity {
                        over_capacity.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    assert_eq!(
        over_capacity.load(Ordering::Relaxed),
        0,
        "resident bytes exceeded capacity {capacity} during churn"
    );

    let snap = telemetry::snapshot();
    let hits = snap.counter(Counter::TemplateHit);
    let misses = snap.counter(Counter::TemplateMiss);
    let evicts = snap.counter(Counter::TemplateEvict);
    let bypasses = snap.counter(Counter::TemplateBypass);
    let calls = (THREADS * OPS_PER_THREAD) as u64;

    // Every call is exactly one of hit / miss / bypass.
    assert_eq!(hits + misses + bypasses, calls, "{snap:?}");
    assert!(hits > 0, "hot keys must produce hits");
    assert!(misses > 0, "cold keys must produce misses");
    assert!(
        evicts > 0,
        "{KEYS} keys over {STORE_SHARDS} shards with ~1.5-template budgets must evict"
    );
    assert!(evicts <= misses, "can only evict what a miss inserted");

    // Residency reconciles: every resident template came from a miss that
    // wasn't evicted (same-key build races replace, never add).
    let resident_now = engine.store().len() as u64;
    assert!(resident_now >= 1);
    assert!(
        resident_now <= misses - evicts,
        "len {resident_now} vs misses {misses} - evicts {evicts}"
    );
    assert!(engine.store().bytes_resident() <= capacity);

    // The exported gauge tracks the store's own accounting.
    let gauge = telemetry::gauge(Gauge::TemplateBytesResident);
    assert!(
        gauge <= capacity as u64,
        "gauge {gauge} exceeded capacity {capacity}"
    );

    telemetry::set_level(Level::Off);
    telemetry::reset();
}
