//! Determinism stress for `core::par`: seeded, deliberately irregular
//! workloads fanned out at 1/2/4/8 workers must produce bit-identical,
//! index-ordered output — the contiguous-chunk split means the worker
//! count can never change what a caller observes. Also pins the
//! scheduler's own observability: the per-worker busy/idle histograms
//! must be populated after a multi-worker fan-out.
//!
//! Own integration binary: it flips the process-wide telemetry level.

use bluefi_core::rng::{Rng, SeedableRng, StdRng};
use bluefi_core::telemetry::{self, Level, SpanKind};
use std::sync::Mutex;

/// Serializes the two tests: the harness runs them on separate threads,
/// and a fan-out from one must not bleed into the other's telemetry
/// window.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// One synthetic job: `rounds` is drawn per-item from a seeded RNG so the
/// per-item cost is irregular (1×–32×), which is exactly where a work
/// scheduler could be tempted to reorder results.
#[derive(Clone)]
struct Job {
    seed: u64,
    rounds: u64,
}

fn jobs(n: usize, master_seed: u64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(master_seed);
    (0..n)
        .map(|_| Job { seed: rng.next_u64(), rounds: rng.gen_range(64u64..2048) })
        .collect()
}

/// FNV-1a over the job's xoshiro stream: cheap, seed-sensitive, and any
/// reordering or cross-worker state leak changes the digest.
fn digest(scratch: &mut Vec<u64>, idx: usize, job: &Job) -> u64 {
    scratch.clear();
    let mut rng = StdRng::seed_from_u64(job.seed ^ idx as u64);
    for _ in 0..job.rounds {
        scratch.push(rng.next_u64());
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in scratch.iter() {
        h = (h ^ w).wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn output_is_bit_identical_across_worker_counts() {
    let _guard = EXCLUSIVE.lock().unwrap_or_else(|p| p.into_inner());
    let items = jobs(64, 0xB10E_F1);
    let run = |n_workers: usize| -> Vec<u64> {
        bluefi_core::par::par_map_scratch_n(
            &items,
            n_workers,
            Vec::new,
            |scratch: &mut Vec<u64>, idx, job| digest(scratch, idx, job),
        )
    };

    let reference = run(1);
    assert_eq!(reference.len(), items.len());
    // The digests must arrive in submission order, not completion order:
    // recompute a few positions independently.
    let mut check = Vec::new();
    for idx in [0usize, 17, 63] {
        assert_eq!(reference[idx], digest(&mut check, idx, &items[idx]));
    }

    for n_workers in [2usize, 4, 8] {
        let got = run(n_workers);
        assert_eq!(got, reference, "worker count {n_workers} changed the output");
    }
}

#[test]
fn multi_worker_fanout_populates_busy_and_idle_histograms() {
    let _guard = EXCLUSIVE.lock().unwrap_or_else(|p| p.into_inner());
    telemetry::set_level(Level::Counters);
    telemetry::reset();

    let items = jobs(32, 0x5EED);
    let _ = bluefi_core::par::par_map_scratch_n(
        &items,
        4,
        Vec::new,
        |scratch: &mut Vec<u64>, idx, job| digest(scratch, idx, job),
    );

    let snap = telemetry::snapshot();
    let busy = snap
        .span_stat(SpanKind::ParWorkerBusy)
        .expect("busy histogram populated");
    // One busy sample per spawned worker.
    assert_eq!(busy.hist.count, 4, "{snap:?}");
    let idle = snap
        .span_stat(SpanKind::ParWorkerIdle)
        .expect("idle histogram populated");
    assert_eq!(idle.hist.count, 4, "{snap:?}");
    assert!(busy.hist.sum > 0, "workers did real work");

    telemetry::set_level(Level::Off);
    telemetry::reset();
}
