//! Randomized-property tests for the synthesis pipeline's invariants, on
//! the in-tree `bluefi_core::check` harness.

use bluefi_core::check::{check, f64s};
use bluefi_core::cp::CpCompat;
use bluefi_core::qam::{Quantizer, ScaleMode, DEFAULT_SCALE};
use bluefi_core::reversal::{extract_psdu, WeightProfile};
use bluefi_core::rng::Rng;
use bluefi_core::{prop_assert, prop_assert_eq};
use bluefi_wifi::qam::Modulation;
use bluefi_wifi::tx::scrambled_bits;
use bluefi_wifi::Mcs;

#[test]
fn cp_construction_invariants() {
    check(
        "cp_construction_invariants",
        |rng| (f64s(rng, -6.0..6.0, 72 * 2..72 * 5), rng.gen_range(-0.3..0.3)),
        |(phases, freq)| {
            let c = CpCompat::sgi();
            let th = c.make_compatible(phases, *freq);
            prop_assert_eq!(th.len() % 72, 0);
            for block in th.chunks_exact(72) {
                // CP == tail, always.
                for n in 0..8 {
                    prop_assert_eq!(block[n], block[64 + n]);
                }
            }
            // Windowing fixed point across interior boundaries.
            for m in 0..th.len() / 72 - 1 {
                prop_assert_eq!(th[m * 72 + 8], th[m * 72 + 72]);
            }
            Ok(())
        },
    );
}

#[test]
fn quantizer_outputs_stay_on_grid() {
    check(
        "quantizer_outputs_stay_on_grid",
        |rng| f64s(rng, -10.0..10.0, 64..65),
        |phases| {
            let q = Quantizer::new(Modulation::Qam64, ScaleMode::Fixed(DEFAULT_SCALE));
            let sym = q.quantize_body(phases);
            prop_assert_eq!(sym.points.len(), 52);
            for p in &sym.points {
                let (r, i) = (p.re as i64, p.im as i64);
                prop_assert!(r.abs() % 2 == 1 && r.abs() <= 7);
                prop_assert!(i.abs() % 2 == 1 && i.abs() <= 7);
            }
            prop_assert!(sym.residue >= 0.0);
            prop_assert!(sym.per_subcarrier.len() == 52);
            Ok(())
        },
    );
}

#[test]
fn extract_psdu_inverts_chip_framing() {
    check(
        "extract_psdu_inverts_chip_framing",
        |rng| (rng.gen_range(1usize..120), rng.gen_range(1u8..128)),
        |&(psdu_len, seed)| {
            // Build the *maximal* PSDU for its symbol count so the
            // convention matches (see reversal::extract_psdu).
            let mcs = Mcs::bluefi_viterbi();
            let ndbps = mcs.data_bits_per_symbol();
            let n_sym = (16 + psdu_len * 8 + 6).div_ceil(ndbps);
            let max_len = (n_sym * ndbps - 22) / 8;
            let psdu: Vec<u8> = (0..max_len).map(|i| (i * 37 + seed as usize) as u8).collect();
            let mut scrambled = scrambled_bits(&psdu, seed, mcs);
            let (got, forced) = extract_psdu(&mut scrambled, seed);
            prop_assert_eq!(forced, 0);
            prop_assert_eq!(&got[..psdu.len()], &psdu[..]);
            Ok(())
        },
    );
}

#[test]
fn weight_profile_is_monotone_in_distance() {
    check(
        "weight_profile_is_monotone_in_distance",
        |rng| (rng.gen_range(-26.0..26.0), rng.gen_range(-28i32..29)),
        |&(bt, sc)| {
            let p = WeightProfile::default();
            let d = (sc as f64 - bt).abs();
            let w = p.weight_at(sc, bt);
            if d <= p.band {
                prop_assert_eq!(w, p.high);
            } else if d <= p.guard {
                prop_assert_eq!(w, p.medium);
            } else {
                prop_assert_eq!(w, p.low);
            }
            Ok(())
        },
    );
}
