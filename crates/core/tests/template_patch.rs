//! Randomized property: the template-cache patch path is word-for-word
//! identical to a full resynthesis, for random base payloads and random
//! small mutations, under both chip seed policies and on all three
//! representative Bluetooth channels (including the Back-edge channel 24).

use bluefi_core::check::{bools, check};
use bluefi_core::rng::Rng;
use bluefi_core::{
    prop_assert, prop_assert_eq, BlueFi, CachedEngine, CachedScratch, DecodeStrategy,
    PhaseMode,
};
use bluefi_wifi::channels::{plan_channel, ChannelPlan};

/// The three BT channels the conformance matrix pins: 10 (Front, on-center),
/// 24 (negative subcarrier — the Back-edge assisted path), 50 (Front).
const BT_CHANNELS: [u8; 3] = [10, 24, 50];

/// The two chip scrambler-seed policies (AR9331 fixed seed 1, RTL8811AU
/// fixed seed 71 — see `bluefi_conformance::trace`).
const CHIP_SEEDS: [u8; 2] = [1, 71];

fn bt_channel_freq_hz(ch: u8) -> f64 {
    (2402.0 + ch as f64) * 1e6
}

fn fleet_bf() -> BlueFi {
    BlueFi {
        strategy: DecodeStrategy::Realtime,
        phase: PhaseMode::Anchored,
        ..Default::default()
    }
}

#[derive(Debug)]
struct Case {
    plan: ChannelPlan,
    seed: u8,
    base: Vec<bool>,
    mutated: Vec<bool>,
}

#[test]
fn patched_synthesis_equals_full_resynthesis() {
    let bf = fleet_bf();
    let engine = CachedEngine::new(bf.clone());
    let mut scratch = CachedScratch::new();
    let mut turn = 0usize;
    check(
        "patched_synthesis_equals_full_resynthesis",
        |rng| {
            // Round-robin the (channel, seed) grid so every cell is
            // exercised regardless of the case count; randomize the rest.
            let ch = BT_CHANNELS[turn % BT_CHANNELS.len()];
            let seed = CHIP_SEEDS[(turn / BT_CHANNELS.len()) % CHIP_SEEDS.len()];
            turn += 1;
            // lint: allow(panic) channels 10..50 always plan
            let plan = plan_channel(bt_channel_freq_hz(ch)).unwrap();
            // Lengths from a small bucket set: the real-time elimination
            // plan is interned per (length, edge), so reusing lengths keeps
            // the property about *patching*, not plan construction.
            let len = 640 + 176 * rng.gen_range(0usize..8);
            let base = bools(rng, len..len + 1);
            // Mutate up to 4 whole bytes (the beacon-fleet shape: counters,
            // TX power, rotating address bytes), anywhere in the payload.
            let mut mutated = base.clone();
            let n_bytes = base.len() / 8;
            for _ in 0..rng.gen_range(1usize..5) {
                let byte = rng.gen_range(0usize..n_bytes);
                let mask = rng.gen_range(1u32..256) as u8;
                for bit in 0..8 {
                    if mask >> bit & 1 == 1 {
                        mutated[byte * 8 + bit] ^= true;
                    }
                }
            }
            Case { plan, seed, base, mutated }
        },
        |case| {
            // Prime the template (miss) with the base payload...
            engine.synthesize_at_with(&case.base, case.plan, case.seed, &mut scratch);
            // ...then patch the mutation and compare against a cold
            // synthesis of the same mutated payload, every field.
            let got =
                engine.synthesize_at_with(&case.mutated, case.plan, case.seed, &mut scratch);
            let want = bf.synthesize_at(&case.mutated, case.plan, case.seed);
            prop_assert_eq!(&got.psdu, &want.psdu);
            prop_assert_eq!(&got.flips, &want.flips);
            prop_assert_eq!(got.forced_bits, want.forced_bits);
            prop_assert_eq!(got.n_symbols, want.n_symbols);
            prop_assert_eq!(got.seed, want.seed);
            prop_assert!(
                got.mean_quant_error_db.to_bits() == want.mean_quant_error_db.to_bits(),
                "quant error {} != {}",
                got.mean_quant_error_db,
                want.mean_quant_error_db
            );
            Ok(())
        },
    );
    // The round-robin must have covered the full (channel, seed) grid.
    assert!(turn >= BT_CHANNELS.len() * CHIP_SEEDS.len(), "grid not covered");
}
