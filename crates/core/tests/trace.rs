//! Integration tests for causal per-packet tracing: ring overflow with
//! drop accounting, cross-worker trace-ID integrity at several worker
//! counts, tail-exemplar retention across ring wrap, and a schema pin on
//! the Chrome `trace_event` JSON export.
//!
//! The recorder's level and the trace registry are process-global, so
//! every test serializes on [`lock`] and restores `Level::Off`.

use bluefi_core::json::Json;
use bluefi_core::par::par_map_scratch_n;
use bluefi_core::pipeline::{BlueFi, SynthesisScratch};
use bluefi_core::telemetry::{self, trace, Level, SpanKind};
use bluefi_wifi::channels::plan_channel;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

fn test_bits() -> Vec<bool> {
    (0..368).map(|i| i % 5 == 0 || i % 11 == 3).collect()
}

#[test]
fn ring_overflow_counts_dropped_events() {
    let _g = lock();
    telemetry::set_level(Level::Trace);
    telemetry::reset();
    const EXTRA: usize = 50;
    // Each guard is a single-span root packet: it flushes straight to the
    // ring on close. Overfill by EXTRA to force overwrite-oldest.
    for _ in 0..trace::TRACE_RING_CAPACITY + EXTRA {
        let _sp = telemetry::span(SpanKind::Synthesize);
    }
    let snap = trace::snapshot();
    assert_eq!(snap.events.len(), trace::TRACE_RING_CAPACITY);
    assert_eq!(snap.dropped_events, EXTRA as u64);
    assert_eq!(snap.truncated_spans, 0);
    // Overwrite-oldest: the surviving events are the newest ones, so the
    // smallest retained trace ID is EXTRA roots past the smallest drawn.
    let ids: BTreeSet<u64> = snap.events.iter().map(|e| e.trace_id).collect();
    assert_eq!(ids.len(), trace::TRACE_RING_CAPACITY, "all roots distinct");
    let min = *ids.iter().next().unwrap();
    let max = *ids.iter().next_back().unwrap();
    assert_eq!(max - min + 1, trace::TRACE_RING_CAPACITY as u64, "contiguous newest window");
    telemetry::set_level(Level::Off);
    telemetry::reset();
}

/// Cross-worker trace-ID integrity: at 1, 2 and 4 workers, every packet's
/// spans share one trace ID and one worker tag, every child links to a
/// parent within its own trace, and each synthesize span has all five
/// pipeline phases as direct children.
#[test]
fn trace_ids_are_consistent_across_worker_counts() {
    let _g = lock();
    let bf = BlueFi::default();
    let plan = plan_channel(2.426e9).expect("advertising channel plans");
    let jobs: Vec<Vec<bool>> = (0..6)
        .map(|j| {
            let mut bits = test_bits();
            bits[j] = !bits[j];
            bits
        })
        .collect();
    for n_workers in [1usize, 2, 4] {
        telemetry::set_level(Level::Trace);
        telemetry::reset();
        let out = par_map_scratch_n(&jobs, n_workers, SynthesisScratch::new, |scratch, _i, bits| {
            bf.synthesize_at_with(bits, plan, 71, scratch).psdu.len()
        });
        assert_eq!(out.len(), jobs.len());
        let snap = trace::snapshot();

        // Group events by trace ID and check per-trace invariants.
        let mut traces: BTreeMap<u64, Vec<&trace::TraceEvent>> = BTreeMap::new();
        for ev in &snap.events {
            traces.entry(ev.trace_id).or_default().push(ev);
        }
        let mut synth_spans = 0usize;
        for (tid, evs) in &traces {
            let roots: Vec<_> =
                evs.iter().filter(|e| e.parent_id == trace::NO_PARENT).collect();
            assert_eq!(roots.len(), 1, "trace {tid} has exactly one root ({n_workers} workers)");
            let workers: BTreeSet<u32> = evs.iter().map(|e| e.worker).collect();
            assert_eq!(workers.len(), 1, "trace {tid} spans a single worker");
            let span_ids: BTreeSet<u32> = evs.iter().map(|e| e.span_id).collect();
            assert_eq!(span_ids.len(), evs.len(), "span IDs unique within trace {tid}");
            for ev in evs {
                if ev.parent_id != trace::NO_PARENT {
                    assert!(
                        span_ids.contains(&ev.parent_id),
                        "trace {tid}: child {} links to a span in its own trace",
                        ev.span_id
                    );
                }
            }
            // Every synthesize span carries the full five-phase breakdown.
            for sp in evs.iter().filter(|e| e.kind == SpanKind::Synthesize) {
                synth_spans += 1;
                for phase in SpanKind::pipeline_phases() {
                    let n = evs
                        .iter()
                        .filter(|e| e.kind == phase && e.parent_id == sp.span_id)
                        .count();
                    assert_eq!(n, 1, "trace {tid}: one {} child per packet", phase.name());
                }
            }
        }
        assert_eq!(synth_spans, jobs.len(), "one synthesize span per job at {n_workers} workers");
        if n_workers >= 2 {
            // Spawned workers are tagged 1-based; at least two must appear.
            let workers: BTreeSet<u32> = snap
                .events
                .iter()
                .filter(|e| e.kind == SpanKind::Synthesize)
                .map(|e| e.worker)
                .collect();
            assert!(
                workers.len() >= 2 && workers.iter().all(|&w| w >= 1),
                "packets attributed to ≥2 spawned workers, got {workers:?}"
            );
        }
    }
    telemetry::set_level(Level::Off);
    telemetry::reset();
}

/// Tail exemplars keep the slowest packet's complete span set alive even
/// after the ring has wrapped past it.
#[test]
fn exemplars_survive_ring_wrap() {
    let _g = lock();
    telemetry::set_level(Level::Trace);
    telemetry::reset();
    // One deliberately slow packet...
    {
        let _sp = telemetry::span(SpanKind::Synthesize);
        let _child = telemetry::span(SpanKind::Gfsk);
        std::thread::sleep(std::time::Duration::from_millis(3));
    }
    let slow_id = {
        let snap = trace::snapshot();
        snap.events
            .iter()
            .find(|e| e.parent_id == trace::NO_PARENT && e.dur_ns >= 2_000_000)
            .expect("slow root recorded")
            .trace_id
    };
    // ...then enough fast packets to wrap the ring completely.
    for _ in 0..trace::TRACE_RING_CAPACITY {
        let _sp = telemetry::span(SpanKind::Synthesize);
    }
    let snap = trace::snapshot();
    assert!(snap.dropped_events > 0, "ring wrapped");
    assert!(
        snap.events.iter().all(|e| e.trace_id != slow_id),
        "slow packet was overwritten in the ring"
    );
    // The exemplar slots retained it, slowest first, span set intact.
    let top = snap.exemplars.first().expect("exemplars retained");
    assert!(top.root_dur_ns >= 2_000_000);
    assert!(top.events.iter().all(|e| e.trace_id == slow_id));
    assert_eq!(top.events.len(), 2, "root and child both retained");
    telemetry::set_level(Level::Off);
    telemetry::reset();
}

/// Schema pin for the Chrome `trace_event` export: field names, phase
/// markers, null parent on roots, thread-name metadata, `otherData`
/// accounting, and cross-section deduplication.
#[test]
fn chrome_trace_export_schema() {
    let _g = lock();
    telemetry::set_level(Level::Trace);
    telemetry::reset();
    let bf = BlueFi::default();
    let plan = plan_channel(2.426e9).expect("advertising channel plans");
    let mut scratch = SynthesisScratch::new();
    bf.synthesize_at_with(&test_bits(), plan, 71, &mut scratch);
    {
        // A span on a tagged worker so the export carries a non-main tid.
        let _tag = trace::worker_scope(3);
        let _sp = telemetry::span(SpanKind::Synthesize);
    }
    let snap = trace::snapshot();
    // Passing the same section twice must not duplicate events.
    let doc = trace::chrome_trace(&[snap.clone(), snap]);
    let text = doc.render();
    let parsed = Json::parse(&text).expect("export is valid JSON");

    assert_eq!(parsed.get("displayTimeUnit").and_then(Json::as_str), Some("ns"));
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let xs: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    let metas: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .collect();
    assert!(!xs.is_empty() && !metas.is_empty());
    assert_eq!(events.len(), xs.len() + metas.len(), "only X and M records");

    for m in &metas {
        assert_eq!(m.get("name").and_then(Json::as_str), Some("thread_name"));
        assert!(m.get("tid").and_then(Json::as_f64).is_some());
        let label = m.get("args").and_then(|a| a.get("name")).and_then(Json::as_str);
        assert!(
            label == Some("main") || label.is_some_and(|l| l.starts_with("worker-")),
            "thread label {label:?}"
        );
    }
    let mut keyed: BTreeSet<(u64, u64)> = BTreeSet::new();
    for e in &xs {
        assert_eq!(e.get("cat").and_then(Json::as_str), Some("bluefi"));
        assert_eq!(e.get("pid").and_then(Json::as_f64), Some(1.0));
        assert!(e.get("name").and_then(Json::as_str).is_some());
        for field in ["tid", "ts", "dur"] {
            assert!(e.get(field).and_then(Json::as_f64).is_some(), "{field} present");
        }
        let args = e.get("args").expect("args object");
        for field in ["trace_id", "span_id", "worker", "detail"] {
            assert!(args.get(field).and_then(Json::as_f64).is_some(), "args.{field}");
        }
        assert!(args.get("parent_id").is_some(), "args.parent_id present (may be null)");
        let key = (
            args.get("trace_id").and_then(Json::as_f64).unwrap() as u64,
            args.get("span_id").and_then(Json::as_f64).unwrap() as u64,
        );
        assert!(keyed.insert(key), "duplicate event {key:?} despite two sections");
    }
    // The synthesize root is parentless; all five phases link to it.
    let root = xs
        .iter()
        .find(|e| {
            e.get("name").and_then(Json::as_str) == Some("synthesize")
                && e.get("args").and_then(|a| a.get("parent_id")) == Some(&Json::Null)
                && e.get("tid").and_then(Json::as_f64) == Some(0.0)
        })
        .expect("parentless synthesize root on the main thread");
    let root_args = root.get("args").unwrap();
    let root_trace = root_args.get("trace_id").and_then(Json::as_f64).unwrap();
    let root_span = root_args.get("span_id").and_then(Json::as_f64).unwrap();
    for phase in SpanKind::pipeline_phases() {
        assert!(
            xs.iter().any(|e| {
                let a = e.get("args").unwrap();
                e.get("name").and_then(Json::as_str) == Some(phase.name())
                    && a.get("trace_id").and_then(Json::as_f64) == Some(root_trace)
                    && a.get("parent_id").and_then(Json::as_f64) == Some(root_span)
            }),
            "{} child linked to root",
            phase.name()
        );
    }
    // The tagged worker shows up as its own tid with a thread_name record.
    assert!(xs.iter().any(|e| e.get("tid").and_then(Json::as_f64) == Some(3.0)));
    assert!(metas.iter().any(|m| {
        m.get("tid").and_then(Json::as_f64) == Some(3.0)
            && m.get("args").and_then(|a| a.get("name")).and_then(Json::as_str)
                == Some("worker-3")
    }));
    let other = parsed.get("otherData").expect("otherData object");
    for field in ["dropped_events", "truncated_spans", "exemplar_packets"] {
        assert!(other.get(field).and_then(Json::as_f64).is_some(), "otherData.{field}");
    }
    telemetry::set_level(Level::Off);
    telemetry::reset();
}
