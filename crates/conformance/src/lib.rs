//! # bluefi-conformance
//!
//! The conformance subsystem: proof that the synthesis chain stays
//! *bit-exact* as the codebase evolves. The paper's contribution is a chain
//! of reversals precise enough that a COTS Bluetooth receiver locks onto
//! the phase of a WiFi transmission — one flipped bit anywhere in the chain
//! silently breaks reception, so this crate pins the chain down three ways:
//!
//! * [`golden`] — committed JSON fixtures capturing every stage boundary
//!   (scrambler → BCC+puncture → interleave → QAM → OFDM → final IQ, plus
//!   the reversal weights) for BLE-adv and EDR payloads under both chip
//!   models. `cargo run -p bluefi-conformance -- regen` rewrites them,
//!   `-- check` diffs with per-stage first-divergence reporting, and a
//!   tier-1 test fails when code drifts from the fixtures.
//! * [`diff`] — a differential matrix proving the allocating, scratch and
//!   parallel-batch execution paths (across worker counts and telemetry
//!   levels) produce bit-identical output.
//! * [`fuzz`] — a deterministic structured fuzzer over (payload, channel
//!   plan, chip, channel-model) space with per-iteration invariant checks,
//!   seed replay and a minimizing shrinker.
//!
//! The digest machinery shared by all three lives in [`digest`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod digest;
pub mod fuzz;
pub mod golden;
pub mod trace;

pub use diff::{run_matrix, run_matrix_at_levels, MatrixReport};
pub use digest::{compare_words, Canon, Divergence, Fnv64, StageVector};
pub use fuzz::{replay, run_fuzz, shrink, FuzzInput, FuzzReport, Violation};
pub use golden::{check_all, regen_all, CheckReport};
pub use trace::{trace_case, CaseSpec, CaseTrace, Chip, PayloadKind, CASES};
