//! Golden-vector fixtures: JSON serialization, regeneration and checking.
//!
//! Each fixture is one JSON file under the crate's `fixtures/` directory:
//! the four [`crate::trace::CASES`] (payload × chip matrix) plus a
//! standalone HT-mixed preamble fixture. All 64-bit values — digests,
//! checkpoints, literal prefix words, `f64` bit patterns — are stored as
//! 16-hex-char strings because the in-tree JSON type carries numbers as
//! `f64`, which cannot round-trip a full `u64` exactly.
//!
//! `regen_all` rewrites every fixture from the current code;
//! `check_all` recomputes each trace and reports the first divergence per
//! stage against the committed expectation.

use crate::digest::{Divergence, StageVector};
use crate::trace::{trace_case, CaseMeta, CaseTrace, CASES};
use bluefi_core::json::Json;
use bluefi_wifi::preamble::ht_mixed_preamble;
use bluefi_wifi::Mcs;
use std::path::{Path, PathBuf};

/// PSDU length the preamble fixture signals (arbitrary but fixed).
pub const PREAMBLE_PSDU_LEN: usize = 1000;

/// The preamble fixture's file stem.
pub const PREAMBLE_FIXTURE: &str = "preamble_ht_mixed";

/// The crate's committed fixture directory.
pub fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn hex16(w: u64) -> Json {
    Json::Str(format!("{w:016x}"))
}

fn parse_hex16(j: &Json, what: &str) -> Result<u64, String> {
    let s = j.as_str().ok_or_else(|| format!("{what}: expected a hex string"))?;
    u64::from_str_radix(s, 16).map_err(|e| format!("{what}: bad hex `{s}`: {e}"))
}

fn get<'a>(j: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("{ctx}: missing key `{key}`"))
}

fn get_usize(j: &Json, key: &str, ctx: &str) -> Result<usize, String> {
    let v = get(j, key, ctx)?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: `{key}` is not a number"))?;
    Ok(v as usize)
}

fn stage_to_json(s: &StageVector) -> Json {
    Json::obj(vec![
        ("stage", Json::Str(s.stage.clone())),
        ("elems", Json::Num(s.elems as f64)),
        ("words", Json::Num(s.words as f64)),
        ("digest", hex16(s.digest)),
        ("checkpoints", Json::Arr(s.checkpoints.iter().map(|&c| hex16(c)).collect())),
        ("prefix", Json::Arr(s.prefix.iter().map(|&w| hex16(w)).collect())),
    ])
}

fn stage_from_json(j: &Json) -> Result<StageVector, String> {
    let stage = get(j, "stage", "stage")?
        .as_str()
        .ok_or_else(|| "stage: `stage` is not a string".to_string())?
        .to_string();
    let ctx = format!("stage `{stage}`");
    let hexes = |key: &str| -> Result<Vec<u64>, String> {
        get(j, key, &ctx)?
            .as_arr()
            .ok_or_else(|| format!("{ctx}: `{key}` is not an array"))?
            .iter()
            .map(|v| parse_hex16(v, &format!("{ctx}.{key}")))
            .collect()
    };
    Ok(StageVector {
        elems: get_usize(j, "elems", &ctx)?,
        words: get_usize(j, "words", &ctx)?,
        digest: parse_hex16(get(j, "digest", &ctx)?, &format!("{ctx}.digest"))?,
        checkpoints: hexes("checkpoints")?,
        prefix: hexes("prefix")?,
        stage,
    })
}

fn meta_to_json(m: &CaseMeta) -> Json {
    Json::obj(vec![
        ("seed", Json::Num(m.seed as f64)),
        ("mcs", Json::Num(m.mcs as f64)),
        ("wifi_channel", Json::Num(m.wifi_channel as f64)),
        ("tx_subcarrier_bits", hex16(m.tx_subcarrier_bits)),
        ("psdu_len", Json::Num(m.psdu_len as f64)),
        ("n_symbols", Json::Num(m.n_symbols as f64)),
        ("forced_bits", Json::Num(m.forced_bits as f64)),
        ("mean_quant_error_bits", hex16(m.mean_quant_error_bits)),
    ])
}

fn meta_from_json(j: &Json, ctx: &str) -> Result<CaseMeta, String> {
    Ok(CaseMeta {
        seed: get_usize(j, "seed", ctx)? as u8,
        mcs: get_usize(j, "mcs", ctx)? as u8,
        wifi_channel: get_usize(j, "wifi_channel", ctx)? as u8,
        tx_subcarrier_bits: parse_hex16(
            get(j, "tx_subcarrier_bits", ctx)?,
            &format!("{ctx}.tx_subcarrier_bits"),
        )?,
        psdu_len: get_usize(j, "psdu_len", ctx)?,
        n_symbols: get_usize(j, "n_symbols", ctx)?,
        forced_bits: get_usize(j, "forced_bits", ctx)?,
        mean_quant_error_bits: parse_hex16(
            get(j, "mean_quant_error_bits", ctx)?,
            &format!("{ctx}.mean_quant_error_bits"),
        )?,
    })
}

fn trace_to_json(t: &CaseTrace) -> Json {
    Json::obj(vec![
        ("name", Json::Str(t.name.clone())),
        ("meta", meta_to_json(&t.meta)),
        ("stages", Json::Arr(t.stages.iter().map(stage_to_json).collect())),
    ])
}

fn trace_from_json(j: &Json) -> Result<CaseTrace, String> {
    let name = get(j, "name", "fixture")?
        .as_str()
        .ok_or_else(|| "fixture: `name` is not a string".to_string())?
        .to_string();
    let meta = meta_from_json(get(j, "meta", &name)?, &name)?;
    let stages = get(j, "stages", &name)?
        .as_arr()
        .ok_or_else(|| format!("{name}: `stages` is not an array"))?
        .iter()
        .map(stage_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CaseTrace { name, meta, stages })
}

/// The HT-mixed preamble reduced to per-segment stage vectors.
///
/// Segment boundaries follow 802.11n-2009 Fig 20-1 at 20 MHz / 20 Msps:
/// L-STF and L-LTF are 8 µs (160 samples) each, L-SIG and each HT-SIG
/// symbol 4 µs (80), HT-STF 4 µs (80 — windowing overlap folds into the
/// neighbouring segments here), HT-LTF 4 µs.
pub fn preamble_trace() -> CaseTrace {
    let iq = ht_mixed_preamble(&Mcs::from_index(7), PREAMBLE_PSDU_LEN, true);
    let seg = |name: &str, lo: usize, hi: usize| {
        StageVector::capture(name, &iq[lo.min(iq.len())..hi.min(iq.len())])
    };
    let stages = vec![
        seg("l_stf", 0, 160),
        seg("l_ltf", 160, 320),
        seg("l_sig", 320, 400),
        seg("ht_sig", 400, 560),
        seg("ht_stf", 560, 640),
        seg("ht_ltf", 640, 720),
        StageVector::capture("full", &iq),
    ];
    CaseTrace {
        name: PREAMBLE_FIXTURE.to_string(),
        meta: CaseMeta {
            seed: 0,
            mcs: 7,
            wifi_channel: 0,
            tx_subcarrier_bits: 0,
            psdu_len: PREAMBLE_PSDU_LEN,
            n_symbols: 0,
            forced_bits: 0,
            mean_quant_error_bits: 0,
        },
        stages,
    }
}

/// Computes all current traces: the four cases plus the preamble.
pub fn current_traces() -> Result<Vec<CaseTrace>, String> {
    let mut out = Vec::with_capacity(CASES.len() + 1);
    for spec in &CASES {
        out.push(trace_case(spec)?);
    }
    out.push(preamble_trace());
    Ok(out)
}

/// Regenerates every fixture under `dir`, returning the files written.
pub fn regen_all(dir: &Path) -> Result<Vec<PathBuf>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut written = Vec::new();
    for t in current_traces()? {
        let path = dir.join(format!("{}.json", t.name));
        let mut text = trace_to_json(&t).render();
        text.push('\n');
        std::fs::write(&path, text).map_err(|e| format!("write {}: {e}", path.display()))?;
        written.push(path);
    }
    Ok(written)
}

/// The outcome of checking current code against committed fixtures.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Fixture names that were compared.
    pub checked: Vec<String>,
    /// First divergence found in each diverging stage (or meta field).
    pub divergences: Vec<Divergence>,
}

impl CheckReport {
    /// True when every fixture matched bit-for-bit.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str(&format!(
                "conformance check: {} fixtures OK ({})\n",
                self.checked.len(),
                self.checked.join(", "),
            ));
        } else {
            out.push_str(&format!(
                "conformance check: {} divergence(s) across {} fixtures\n",
                self.divergences.len(),
                self.checked.len(),
            ));
            for d in &self.divergences {
                out.push_str(&format!("  {d}\n"));
            }
        }
        out
    }
}

fn meta_divergences(case: &str, expected: &CaseMeta, got: &CaseMeta) -> Vec<Divergence> {
    let mk = |field: &str, exp: String, g: String| Divergence {
        stage: case.to_string(),
        kind: format!("meta:{field}"),
        index: 0,
        expected: exp,
        got: g,
    };
    let mut out = Vec::new();
    if expected.seed != got.seed {
        out.push(mk("seed", expected.seed.to_string(), got.seed.to_string()));
    }
    if expected.mcs != got.mcs {
        out.push(mk("mcs", expected.mcs.to_string(), got.mcs.to_string()));
    }
    if expected.wifi_channel != got.wifi_channel {
        out.push(mk(
            "wifi_channel",
            expected.wifi_channel.to_string(),
            got.wifi_channel.to_string(),
        ));
    }
    if expected.tx_subcarrier_bits != got.tx_subcarrier_bits {
        out.push(mk(
            "tx_subcarrier",
            format!("{:?}", f64::from_bits(expected.tx_subcarrier_bits)),
            format!("{:?}", f64::from_bits(got.tx_subcarrier_bits)),
        ));
    }
    if expected.psdu_len != got.psdu_len {
        out.push(mk("psdu_len", expected.psdu_len.to_string(), got.psdu_len.to_string()));
    }
    if expected.n_symbols != got.n_symbols {
        out.push(mk("n_symbols", expected.n_symbols.to_string(), got.n_symbols.to_string()));
    }
    if expected.forced_bits != got.forced_bits {
        out.push(mk(
            "forced_bits",
            expected.forced_bits.to_string(),
            got.forced_bits.to_string(),
        ));
    }
    if expected.mean_quant_error_bits != got.mean_quant_error_bits {
        out.push(mk(
            "mean_quant_error_db",
            format!("{:?}", f64::from_bits(expected.mean_quant_error_bits)),
            format!("{:?}", f64::from_bits(got.mean_quant_error_bits)),
        ));
    }
    out
}

/// Compares one freshly computed trace against its committed expectation.
pub fn check_trace(expected: &CaseTrace, got: &CaseTrace) -> Vec<Divergence> {
    let mut out = meta_divergences(&expected.name, &expected.meta, &got.meta);
    let exp_names: Vec<&str> = expected.stages.iter().map(|s| s.stage.as_str()).collect();
    let got_names: Vec<&str> = got.stages.iter().map(|s| s.stage.as_str()).collect();
    if exp_names != got_names {
        out.push(Divergence {
            stage: expected.name.clone(),
            kind: "meta:stage-list".to_string(),
            index: 0,
            expected: exp_names.join(","),
            got: got_names.join(","),
        });
        return out;
    }
    for (e, g) in expected.stages.iter().zip(&got.stages) {
        if let Some(mut d) = g.first_divergence(e) {
            d.stage = format!("{}/{}", expected.name, d.stage);
            out.push(d);
        }
    }
    out
}

/// Recomputes every trace and diffs it against the fixtures in `dir`.
pub fn check_all(dir: &Path) -> Result<CheckReport, String> {
    let mut report = CheckReport::default();
    for got in current_traces()? {
        let path = dir.join(format!("{}.json", got.name));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e} (run `-- regen` first?)", path.display()))?;
        let parsed = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let expected = trace_from_json(&parsed)?;
        if expected.name != got.name {
            return Err(format!(
                "{}: fixture names itself `{}`",
                path.display(),
                expected.name
            ));
        }
        report.divergences.extend(check_trace(&expected, &got));
        report.checked.push(got.name);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_json_roundtrip_is_exact() {
        let x: Vec<f64> = (0..4000).map(|i| (i as f64).sin()).collect();
        let s = StageVector::capture("phase", &x);
        let back = stage_from_json(&stage_to_json(&s)).expect("roundtrip");
        assert_eq!(s, back);
    }

    #[test]
    fn trace_json_roundtrip_is_exact() {
        let t = preamble_trace();
        let text = trace_to_json(&t).render();
        let back = trace_from_json(&Json::parse(&text).expect("parse")).expect("decode");
        assert_eq!(t, back);
    }

    #[test]
    fn preamble_trace_has_the_documented_layout() {
        let t = preamble_trace();
        let names: Vec<&str> = t.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(
            names,
            ["l_stf", "l_ltf", "l_sig", "ht_sig", "ht_stf", "ht_ltf", "full"]
        );
        assert_eq!(t.stages.iter().find(|s| s.stage == "full").map(|s| s.elems), Some(720));
        assert_eq!(t.stages[0].elems, 160);
    }

    #[test]
    fn check_trace_flags_meta_and_stage_drift() {
        let a = preamble_trace();
        let mut b = a.clone();
        assert!(check_trace(&a, &b).is_empty());
        b.meta.psdu_len += 1;
        b.stages[0].prefix[5] ^= 1;
        let ds = check_trace(&a, &b);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].kind, "meta:psdu_len");
        assert_eq!(ds[1].kind, "prefix-word");
        assert!(ds[1].stage.contains("l_stf"));
    }
}
