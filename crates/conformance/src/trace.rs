//! Capturing the synthesis chain's stage boundaries for one conformance
//! case: a fixed payload, synthesized and then driven through the *actual*
//! forward TX chain, with a [`StageVector`] recorded at every boundary.
//!
//! The stages, in chain order (paper Fig 1 / Secs 2.3–2.8):
//!
//! | stage          | contents                                            |
//! |----------------|-----------------------------------------------------|
//! | `weights`      | per-position Viterbi weight template (one symbol)   |
//! | `flips`        | coded-bit positions the FEC reversal flipped        |
//! | `scrambled`    | SERVICE+PSDU+tail+pad after the scrambler           |
//! | `coded`        | BCC-encoded, punctured bit stream                   |
//! | `interleaved`  | per-symbol interleaved bits, concatenated           |
//! | `qam_symbols`  | 64-bin frequency-domain symbols, concatenated       |
//! | `ofdm_symbols` | time-domain data field (CP + windowing applied)     |
//! | `final_iq`     | the transmitted PPDU (preamble + data, power-scaled)|

use crate::digest::StageVector;
use bluefi_bt::ble::{adv_air_bits, AdvPdu, AdvPduType};
use bluefi_bt::edr::{edr_modulate_phase, EdrScheme};
use bluefi_core::pipeline::BlueFi;
use bluefi_core::qam::Quantizer;
use bluefi_core::reversal::{coded_stream, extract_psdu, reverse_fec};
use bluefi_wifi::channels::{plan_channel, ChannelPlan};
use bluefi_wifi::chip::ChipModel;
use bluefi_wifi::tx::{coded_bits, scrambled_bits, symbol_spectrum, waveform_from_coded};
use bluefi_wifi::{Interleaver, Mcs};

/// Which Bluetooth payload family a case exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// A BLE advertising beacon on channel 38 (the paper's headline mode).
    BleAdv,
    /// A π/4-DQPSK EDR payload through the phase-generic pipeline
    /// (Sec 5.3 extension).
    Edr,
}

/// Which chip model transmits the case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chip {
    /// Atheros AR9331 with the BlueFi driver patch: constant seed 1.
    Ar9331,
    /// Realtek RTL8811AU: constant seed 71.
    Rtl8811au,
}

impl Chip {
    /// The chip model.
    pub fn model(self) -> ChipModel {
        match self {
            Chip::Ar9331 => ChipModel::ar9331(),
            Chip::Rtl8811au => ChipModel::rtl8811au(),
        }
    }

    /// The scrambler seed the chip's policy yields for the first packet.
    pub fn seed(self) -> u8 {
        self.model().seed_policy.predict(0)
    }

    /// Short lowercase label used in fixture and report names.
    pub fn name(self) -> &'static str {
        match self {
            Chip::Ar9331 => "ar9331",
            Chip::Rtl8811au => "rtl8811au",
        }
    }
}

/// One golden-vector case: payload family × chip model.
#[derive(Debug, Clone, Copy)]
pub struct CaseSpec {
    /// Fixture name (also the file stem under `fixtures/`).
    pub name: &'static str,
    /// Payload family.
    pub payload: PayloadKind,
    /// Transmitting chip.
    pub chip: Chip,
}

/// The committed case matrix: both payload families under both seed
/// policies (AR9331 constant-1, RTL8811AU constant-71).
pub const CASES: [CaseSpec; 4] = [
    CaseSpec { name: "ble_adv_ar9331", payload: PayloadKind::BleAdv, chip: Chip::Ar9331 },
    CaseSpec { name: "ble_adv_rtl8811au", payload: PayloadKind::BleAdv, chip: Chip::Rtl8811au },
    CaseSpec { name: "edr_ar9331", payload: PayloadKind::Edr, chip: Chip::Ar9331 },
    CaseSpec { name: "edr_rtl8811au", payload: PayloadKind::Edr, chip: Chip::Rtl8811au },
];

/// Scalar facts about a case, compared field-by-field before the stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseMeta {
    /// Scrambler seed used.
    pub seed: u8,
    /// MCS index the packet must be transmitted at.
    pub mcs: u8,
    /// Chosen WiFi channel.
    pub wifi_channel: u8,
    /// Transmit subcarrier, as IEEE-754 bits (exact).
    pub tx_subcarrier_bits: u64,
    /// PSDU length in bytes.
    pub psdu_len: usize,
    /// OFDM symbols in the data field.
    pub n_symbols: usize,
    /// Scrambled-bit positions forced to chip-owned values.
    pub forced_bits: usize,
    /// Mean in-band quantization error, as IEEE-754 bits (exact).
    pub mean_quant_error_bits: u64,
}

/// A fully captured case: scalar meta plus one [`StageVector`] per stage
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseTrace {
    /// Case name (matches the [`CaseSpec`]).
    pub name: String,
    /// Scalar facts.
    pub meta: CaseMeta,
    /// Stage vectors in chain order.
    pub stages: Vec<StageVector>,
}

/// The fixed BLE advertising payload every BLE case uses.
pub fn ble_case_pdu() -> AdvPdu {
    AdvPdu {
        pdu_type: AdvPduType::AdvNonconnInd,
        adv_address: [0xB1, 0x0E, 0xF1, 0xCA, 0xFE, 0x01],
        adv_data: (0..16u8).map(|i| i.wrapping_mul(13).wrapping_add(7)).collect(),
        tx_add: false,
    }
}

/// The fixed EDR payload bits (120 bits = 60 π/4-DQPSK symbols).
pub fn edr_case_bits() -> Vec<bool> {
    (0..120).map(|i| (i * 5 + 1) % 7 < 3).collect()
}

// Intermediate synthesis facts shared by both payload arms.
struct Synth {
    psdu: Vec<u8>,
    plan: ChannelPlan,
    mcs: Mcs,
    n_symbols: usize,
    flips: Vec<usize>,
    forced_bits: usize,
    mean_quant_error_db: f64,
}

fn synthesize_ble(seed: u8) -> Result<Synth, String> {
    let bits = adv_air_bits(&ble_case_pdu(), 38);
    let bf = BlueFi::default();
    let syn = bf
        .synthesize(&bits, 2.426e9, seed)
        .ok_or_else(|| "2.426 GHz must be plannable".to_string())?;
    Ok(Synth {
        psdu: syn.psdu,
        plan: syn.plan,
        mcs: syn.mcs,
        n_symbols: syn.n_symbols,
        flips: syn.flips,
        forced_bits: syn.forced_bits,
        mean_quant_error_db: syn.mean_quant_error_db,
    })
}

/// The EDR arm mirrors the `e2e_edr` integration path: DPSK phase →
/// CP-compatible θ̂ → per-symbol quantization → demap/deinterleave →
/// weighted-Viterbi reversal → descramble.
fn synthesize_edr(seed: u8) -> Result<Synth, String> {
    let bf = BlueFi::default();
    let plan = ChannelPlan::pinned(3, 13.0);
    let offset_hz =
        plan.subcarrier * bluefi_wifi::subcarriers::SUBCARRIER_SPACING_HZ;
    let phase = edr_modulate_phase(
        &edr_case_bits(),
        EdrScheme::Dqpsk2,
        &bf.gfsk,
        offset_hz,
    );
    let theta = bf.cp.make_compatible(&phase, offset_hz / bf.gfsk.sample_rate_hz);
    let bodies = bf.cp.strip_cp(&theta);
    let quant = Quantizer::new(bf.strategy.mcs().modulation, bf.scale);
    let symbols: Vec<_> = bodies.iter().map(|b| quant.quantize_body(b)).collect();
    let mut err_sum = 0.0;
    for s in &symbols {
        err_sum += s.in_band_error_db(plan.tx_subcarrier, bf.weights.band);
    }
    let mcs = bf.strategy.mcs();
    let (coded, weights) = coded_stream(&symbols, mcs, plan.tx_subcarrier, &bf.weights);
    let mut rev = reverse_fec(&coded, &weights, bf.strategy, plan.tx_subcarrier);
    let flips = rev.flips.clone();
    let (psdu, forced_bits) = extract_psdu(&mut rev.scrambled, seed);
    Ok(Synth {
        psdu,
        plan,
        mcs,
        n_symbols: symbols.len(),
        flips,
        forced_bits,
        mean_quant_error_db: err_sum / symbols.len().max(1) as f64,
    })
}

/// Captures the full stage trace for one case.
pub fn trace_case(spec: &CaseSpec) -> Result<CaseTrace, String> {
    let seed = spec.chip.seed();
    let s = match spec.payload {
        PayloadKind::BleAdv => synthesize_ble(seed)?,
        PayloadKind::Edr => synthesize_edr(seed)?,
    };
    // Internal consistency: the pinned-plan arm must agree with the
    // planner's view of the same frequency when not pinned.
    if spec.payload == PayloadKind::BleAdv {
        let replanned = plan_channel(2.426e9)
            .ok_or_else(|| "2.426 GHz must be plannable".to_string())?;
        if replanned.wifi_channel != s.plan.wifi_channel {
            return Err("planner disagreed with the captured plan".to_string());
        }
    }

    let meta = CaseMeta {
        seed,
        mcs: s.mcs.index,
        wifi_channel: s.plan.wifi_channel,
        tx_subcarrier_bits: s.plan.tx_subcarrier.to_bits(),
        psdu_len: s.psdu.len(),
        n_symbols: s.n_symbols,
        forced_bits: s.forced_bits,
        mean_quant_error_bits: s.mean_quant_error_db.to_bits(),
    };

    // Reversal weight template: one symbol's worth of per-position Viterbi
    // weights — the deinterleaved pattern repeats every symbol.
    let il = Interleaver::new(s.mcs.modulation);
    let ncbps = il.block_len();
    let bf = BlueFi::default();
    let w_of: Vec<u32> = (0..ncbps)
        .map(|k| bf.weights.weight_at(il.subcarrier_of(k), s.plan.tx_subcarrier))
        .collect();

    // Forward TX chain, stage by stage, from the synthesized PSDU.
    let scrambled = scrambled_bits(&s.psdu, seed, s.mcs);
    let coded = coded_bits(&scrambled, s.mcs);
    let mut interleaved = Vec::with_capacity(coded.len());
    let mut qam = Vec::with_capacity(s.n_symbols * 64);
    for (n, chunk) in coded.chunks_exact(ncbps).enumerate() {
        interleaved.extend(il.interleave(chunk));
        qam.extend(symbol_spectrum(chunk, s.mcs, n));
    }
    let chip = spec.chip.model();
    let cfg = chip.tx_config(s.mcs, seed);
    let ofdm = waveform_from_coded(&coded, &cfg);
    let ppdu = chip.transmit_with_seed(&s.psdu, s.mcs, chip.default_tx_dbm, seed);

    let stages = vec![
        StageVector::capture("weights", &w_of),
        StageVector::capture("flips", &s.flips),
        StageVector::capture("scrambled", &scrambled),
        StageVector::capture("coded", &coded),
        StageVector::capture("interleaved", &interleaved),
        StageVector::capture("qam_symbols", &qam),
        StageVector::capture("ofdm_symbols", &ofdm),
        StageVector::capture("final_iq", &ppdu.iq),
    ];
    Ok(CaseTrace { name: spec.name.to_string(), meta, stages })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ble_trace_is_deterministic_and_chains_consistently() {
        let spec = &CASES[0];
        let a = trace_case(spec).expect("trace");
        let b = trace_case(spec).expect("trace");
        assert_eq!(a, b, "trace must be a pure function of the spec");
        assert_eq!(a.meta.seed, 1);
        assert_eq!(a.meta.mcs, 7);
        assert_eq!(a.meta.wifi_channel, 3);
        assert_eq!(f64::from_bits(a.meta.tx_subcarrier_bits), 13.0);
        // PSDU bytes ↔ symbol accounting (17.3.5.5 framing arithmetic).
        assert_eq!(a.meta.psdu_len, (a.meta.n_symbols * 260 - 22) / 8);
        // Stage length chain: scrambled → coded at rate 5/6, interleaved is
        // a bijection, 64 bins and 72 samples per symbol, 720-sample
        // preamble ahead of the data field.
        let by_name = |n: &str| {
            a.stages
                .iter()
                .find(|s| s.stage == n)
                .unwrap_or_else(|| panic!("missing stage {n}"))
        };
        let n = a.meta.n_symbols;
        assert_eq!(by_name("scrambled").elems, n * 260);
        assert_eq!(by_name("coded").elems, n * 312);
        assert_eq!(by_name("interleaved").elems, n * 312);
        assert_eq!(by_name("qam_symbols").elems, n * 64);
        assert_eq!(by_name("ofdm_symbols").elems, n * 72);
        assert_eq!(by_name("final_iq").elems, 720 + n * 72);
        assert_eq!(by_name("weights").elems, 312);
    }

    #[test]
    fn the_two_seed_policies_share_a_waveform_goal_but_not_a_psdu() {
        let ar = trace_case(&CASES[0]).expect("ar9331");
        let rtl = trace_case(&CASES[1]).expect("rtl8811au");
        assert_eq!(ar.meta.seed, 1);
        assert_eq!(rtl.meta.seed, 71);
        // Different descrambling seeds → different PSDU → different
        // scrambled stream digests; the weight template is seed-independent.
        let stage = |t: &CaseTrace, n: &str| {
            t.stages.iter().find(|s| s.stage == n).map(|s| s.digest).unwrap_or(0)
        };
        assert_ne!(stage(&ar, "scrambled"), stage(&rtl, "scrambled"));
        assert_eq!(stage(&ar, "weights"), stage(&rtl, "weights"));
    }

    #[test]
    fn edr_trace_uses_the_pinned_plan() {
        let t = trace_case(&CASES[2]).expect("edr");
        assert_eq!(t.meta.wifi_channel, 3);
        assert_eq!(f64::from_bits(t.meta.tx_subcarrier_bits), 13.0);
        assert!(t.meta.n_symbols > 10 && t.meta.n_symbols < 40, "{}", t.meta.n_symbols);
        assert!(f64::from_bits(t.meta.mean_quant_error_bits) < -6.0);
    }
}
