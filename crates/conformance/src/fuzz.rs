//! Deterministic structured fuzzer over the synthesize→transmit→channel→
//! receive loop.
//!
//! Every iteration is a pure function of one `u64` seed: the seed drives a
//! [`bluefi_core::rng::StdRng`] that draws a structured [`FuzzInput`]
//! (payload shape, Bluetooth carrier, chip, decode strategy, scale corner,
//! channel-model sweep), the input runs through the pipeline, and a set of
//! invariants is checked. A failing seed therefore reproduces exactly with
//! `-- fuzz --replay <seed>`, and [`shrink`] minimizes the structured
//! input toward a canonical simplest-still-failing form.

use crate::digest::{compare_words, words_of, Canon};
use bluefi_bt::ble::{adv_air_bits, AdvPdu, AdvPduType};
use bluefi_core::pipeline::{BlueFi, Synthesis, SynthesisScratch};
use bluefi_core::reversal::DecodeStrategy;
use bluefi_core::rng::{Rng, SeedableRng, StdRng};
use bluefi_core::verify::{transmit, tuned_receiver};
use bluefi_core::ScaleMode;
use bluefi_dsp::power::{dbm_to_mw, mean_power};
use bluefi_sim::channel::{Channel, ChannelConfig};
use bluefi_wifi::channels::bt_channel_freq_hz;
use bluefi_wifi::chip::ChipModel;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Sentinel for "no noise" in [`FuzzInput::noise_floor_dbm_x10`] (maps to
/// `f64::NEG_INFINITY`, which the channel model treats as exactly zero
/// noise).
pub const NOISE_OFF: i32 = i32::MIN;

/// One structured fuzz case. Every field is integer-encoded so the `Debug`
/// rendering in a [`Violation`] is lossless and the case replays exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzInput {
    /// The generation seed (the replay handle).
    pub seed: u64,
    /// BLE advertising PDU type selector (0–2).
    pub pdu_type: u8,
    /// Advertising data length in bytes (0–16; bucketed to {0, 8, 16}
    /// under the realtime strategy to bound its per-length plan cache).
    pub adv_len: u8,
    /// Seed for the advertiser address and data bytes.
    pub payload_seed: u64,
    /// BLE advertising channel (37–39).
    pub ble_channel: u8,
    /// Bluetooth BR channel index (0–78) → carrier frequency.
    pub bt_channel: u8,
    /// 0 = AR9331, 1 = RTL8811AU.
    pub chip: u8,
    /// Use the realtime (free-edge) decode strategy instead of
    /// weighted-Viterbi.
    pub realtime: bool,
    /// Use the per-symbol dynamic scale search (rare, expensive corner).
    pub dynamic_scale: bool,
    /// Fixed quantizer scale ×1000 (ignored when `dynamic_scale`).
    pub scale_milli: u16,
    /// Channel-model distance, cm.
    pub distance_cm: u32,
    /// Channel-model noise floor ×10 dBm, or [`NOISE_OFF`].
    pub noise_floor_dbm_x10: i32,
    /// Channel-model CFO, Hz.
    pub cfo_hz: i32,
    /// Channel-model shadowing sigma ×10 dB.
    pub shadowing_x10: u16,
    /// Optional second ray: (delay in samples, amplitude ×255).
    pub multipath: Option<(u8, u8)>,
    /// Optional interference: (probability ×100, power over noise dB).
    pub interference: Option<(u8, u8)>,
}

impl FuzzInput {
    /// Draws the structured input for one seed. Pure: the same seed always
    /// yields the same input.
    pub fn generate(seed: u64) -> FuzzInput {
        let mut rng = StdRng::seed_from_u64(seed);
        let realtime = rng.gen_bool(0.25);
        let dynamic_scale = rng.gen_bool(0.04);
        let mut adv_len = rng.gen_range(0u8..17);
        if realtime {
            // Bound the realtime strategy's per-(length, edge) plan cache.
            adv_len = [0u8, 8, 16][(adv_len % 3) as usize];
        }
        if dynamic_scale {
            // The dynamic scale search quantizes each symbol ~13×; keep
            // those cases short.
            adv_len = adv_len.min(8);
        }
        FuzzInput {
            seed,
            pdu_type: rng.gen_range(0u8..3),
            adv_len,
            payload_seed: rng.next_u64(),
            ble_channel: rng.gen_range(37u8..40),
            bt_channel: rng.gen_range(0u8..79),
            chip: rng.gen_range(0u8..2),
            realtime,
            dynamic_scale,
            scale_milli: rng.gen_range(120u16..401),
            distance_cm: rng.gen_range(20u32..2000),
            noise_floor_dbm_x10: if rng.gen_bool(0.2) {
                NOISE_OFF
            } else {
                rng.gen_range(-1100i32..-600)
            },
            cfo_hz: rng.gen_range(-50_000i32..50_001),
            shadowing_x10: rng.gen_range(0u16..40),
            multipath: if rng.gen_bool(0.3) {
                Some((rng.gen_range(1u8..9), rng.gen_range(0u8..160)))
            } else {
                None
            },
            interference: if rng.gen_bool(0.2) {
                Some((rng.gen_range(0u8..30), rng.gen_range(0u8..20)))
            } else {
                None
            },
        }
    }

    /// The BLE advertising PDU this input describes.
    pub fn pdu(&self) -> AdvPdu {
        let mut rng = StdRng::seed_from_u64(self.payload_seed);
        let mut adv_address = [0u8; 6];
        for b in &mut adv_address {
            *b = rng.gen_range(0u32..256) as u8;
        }
        AdvPdu {
            pdu_type: match self.pdu_type {
                0 => AdvPduType::AdvInd,
                1 => AdvPduType::AdvNonconnInd,
                _ => AdvPduType::AdvScanInd,
            },
            adv_address,
            adv_data: (0..self.adv_len).map(|_| rng.gen_range(0u32..256) as u8).collect(),
            tx_add: false,
        }
    }

    /// The pipeline configuration this input describes.
    pub fn bluefi(&self) -> BlueFi {
        BlueFi {
            strategy: if self.realtime {
                DecodeStrategy::Realtime
            } else {
                DecodeStrategy::WeightedViterbi
            },
            scale: if self.dynamic_scale {
                ScaleMode::Dynamic
            } else {
                ScaleMode::Fixed(self.scale_milli as f64 / 1000.0)
            },
            ..BlueFi::default()
        }
    }

    /// The transmitting chip model.
    pub fn chip_model(&self) -> ChipModel {
        if self.chip == 0 {
            ChipModel::ar9331()
        } else {
            ChipModel::rtl8811au()
        }
    }

    /// The channel-model sweep point this input describes.
    pub fn channel_config(&self) -> ChannelConfig {
        ChannelConfig {
            distance_m: self.distance_cm as f64 / 100.0,
            shadowing_sigma_db: self.shadowing_x10 as f64 / 10.0,
            noise_floor_dbm: if self.noise_floor_dbm_x10 == NOISE_OFF {
                f64::NEG_INFINITY
            } else {
                self.noise_floor_dbm_x10 as f64 / 10.0
            },
            cfo_hz: self.cfo_hz as f64,
            multipath: self.multipath.map(|(d, a)| (d as usize, a as f64 / 255.0)),
            interference: self
                .interference
                .map(|(p, db)| (p as f64 / 100.0, db as f64)),
            ..ChannelConfig::default()
        }
    }
}

/// One invariant failure, with everything needed to reproduce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The seed that produced the failing input.
    pub seed: u64,
    /// Which invariant failed.
    pub invariant: String,
    /// What was observed.
    pub detail: String,
    /// Lossless `Debug` rendering of the structured input.
    pub input: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {}: invariant `{}` violated: {} (input: {})",
            self.seed, self.invariant, self.detail, self.input
        )
    }
}

/// Which optional (more expensive) checks to run for an iteration.
#[derive(Debug, Clone, Copy)]
pub struct Checks {
    /// Compare the scratch API's output word-for-word with the allocating
    /// API's.
    pub scratch_diff: bool,
    /// Run the transmitted waveform through a tuned receiver and sanity-
    /// check the reported RSSI.
    pub receiver: bool,
}

impl Checks {
    /// Every check on (replay mode — anything a soak could catch, a replay
    /// must also catch).
    pub fn all() -> Checks {
        Checks { scratch_diff: true, receiver: true }
    }
}

fn violation(input: &FuzzInput, invariant: &str, detail: String) -> Violation {
    Violation {
        seed: input.seed,
        invariant: invariant.to_string(),
        detail,
        input: format!("{input:?}"),
    }
}

fn synthesis_words(syn: &Synthesis) -> Vec<u64> {
    let mut words = Vec::new();
    (syn.psdu.len()).push_words(&mut words);
    words.extend(words_of(&syn.psdu));
    (syn.flips.len()).push_words(&mut words);
    words.extend(words_of(&syn.flips));
    syn.n_symbols.push_words(&mut words);
    syn.forced_bits.push_words(&mut words);
    syn.mean_quant_error_db.push_words(&mut words);
    words
}

fn check_synthesis(
    input: &FuzzInput,
    bits_len: usize,
    bf: &BlueFi,
    syn: &Synthesis,
) -> Result<(), Violation> {
    let mcs = bf.strategy.mcs();
    let ndbps = mcs.data_bits_per_symbol();
    let ncbps = mcs.coded_bits_per_symbol();
    let sps = bf.gfsk.sps();
    let n_samples = (bits_len + 2 * bf.gfsk.guard_bits) * sps;
    let want_symbols = n_samples.div_ceil(bf.cp.block_len());
    if syn.n_symbols != want_symbols {
        return Err(violation(
            input,
            "symbol-count",
            format!("{} symbols, expected {want_symbols}", syn.n_symbols),
        ));
    }
    let want_psdu = (syn.n_symbols * ndbps).saturating_sub(22) / 8;
    if syn.psdu.len() != want_psdu {
        return Err(violation(
            input,
            "psdu-length",
            format!("{} bytes, expected {want_psdu}", syn.psdu.len()),
        ));
    }
    let coded_len = syn.n_symbols * ncbps;
    if !syn.flips.windows(2).all(|w| w[0] < w[1]) {
        return Err(violation(input, "flips-ordered", format!("{:?}", syn.flips)));
    }
    if syn.flips.last().is_some_and(|&f| f >= coded_len) {
        return Err(violation(
            input,
            "flips-in-range",
            format!("last flip {:?} ≥ coded length {coded_len}", syn.flips.last()),
        ));
    }
    if syn.forced_bits > 22 + ndbps {
        return Err(violation(
            input,
            "forced-bits-bound",
            format!("{} forced bits (ndbps {ndbps})", syn.forced_bits),
        ));
    }
    if !syn.mean_quant_error_db.is_finite() || syn.mean_quant_error_db >= 0.0 {
        return Err(violation(
            input,
            "quant-error-negative-db",
            format!("{}", syn.mean_quant_error_db),
        ));
    }
    Ok(())
}

fn run_checked(input: &FuzzInput, checks: Checks) -> Result<(), Violation> {
    let bits = adv_air_bits(&input.pdu(), input.ble_channel);
    let bf = input.bluefi();
    let chip = input.chip_model();
    let seed = chip.seed_policy.predict(0);
    let freq = bt_channel_freq_hz(input.bt_channel);

    let syn = match bf.synthesize(&bits, freq, seed) {
        None => {
            // Only Bluetooth channels 0–1 fall outside every usable WiFi
            // channel (Sec 2.6 planning).
            if input.bt_channel > 1 {
                return Err(violation(
                    input,
                    "plannable",
                    format!("BT channel {} ({freq} Hz) unplannable", input.bt_channel),
                ));
            }
            return Ok(());
        }
        Some(syn) => {
            if input.bt_channel <= 1 {
                return Err(violation(
                    input,
                    "unplannable-edge",
                    format!("BT channel {} should not be plannable", input.bt_channel),
                ));
            }
            syn
        }
    };

    check_synthesis(input, bits.len(), &bf, &syn)?;

    if checks.scratch_diff {
        let mut scratch = SynthesisScratch::new();
        let via_scratch = bf
            .synthesize_with(&bits, freq, seed, &mut scratch)
            .map(|s| synthesis_words(s))
            .unwrap_or_default();
        if let Some(d) = compare_words("scratch-vs-alloc", &synthesis_words(&syn), &via_scratch)
        {
            return Err(violation(input, "scratch-vs-alloc", d.to_string()));
        }
    }

    // Transmit: length accounting, finiteness, exact power normalization.
    let ppdu = transmit(&syn, &chip, chip.default_tx_dbm);
    let want_len = 720 + 72 * syn.n_symbols;
    if ppdu.iq.len() != want_len {
        return Err(violation(
            input,
            "ppdu-length",
            format!("{} samples, expected {want_len}", ppdu.iq.len()),
        ));
    }
    if !ppdu.iq.iter().all(|s| s.re.is_finite() && s.im.is_finite()) {
        return Err(violation(input, "ppdu-finite", "non-finite IQ sample".to_string()));
    }
    let err_db = (mean_power(&ppdu.iq) / dbm_to_mw(chip.default_tx_dbm)).log10().abs() * 10.0;
    if err_db > 0.01 {
        return Err(violation(
            input,
            "tx-power",
            format!("{err_db:.4} dB from {} dBm", chip.default_tx_dbm),
        ));
    }

    // Channel model: length-preserving and finite across the whole
    // ChannelConfig sweep.
    let mut ch_rng = StdRng::seed_from_u64(input.seed ^ 0x00C0_FFEE_F00D_F00D);
    let rxed = Channel::new(input.channel_config()).apply(&ppdu.iq, &mut ch_rng);
    if rxed.len() != ppdu.iq.len() {
        return Err(violation(
            input,
            "channel-length",
            format!("{} in, {} out", ppdu.iq.len(), rxed.len()),
        ));
    }
    if !rxed.iter().all(|s| s.re.is_finite() && s.im.is_finite()) {
        return Err(violation(input, "channel-finite", "non-finite sample".to_string()));
    }

    if checks.receiver {
        // A tuned receiver on the *clean* waveform. Synchronization is a
        // quality metric, not a guarantee — channel-edge subcarriers, low
        // quantizer scales and the realtime strategy legitimately degrade
        // it — but in the well-conditioned region (weighted-Viterbi,
        // near-default scale, carrier well inside the WiFi channel) a sync
        // miss is a regression, and any reported RSSI must be sane.
        let rx = tuned_receiver(&syn).receive_ble_adv(&ppdu.iq, input.ble_channel);
        let well_conditioned = !input.realtime
            && !input.dynamic_scale
            && (150..=250).contains(&input.scale_milli)
            && syn.plan.subcarrier.abs() <= 16.0;
        match rx.rssi_dbm {
            None if well_conditioned => {
                return Err(violation(
                    input,
                    "rssi-present",
                    format!("no sync at subcarrier {}", syn.plan.subcarrier),
                ))
            }
            Some(r) if !(-120.0..=40.0).contains(&r) => {
                return Err(violation(input, "rssi-sane", format!("{r} dBm")))
            }
            _ => {}
        }
    }
    Ok(())
}

/// Runs one input through the pipeline with the given checks, converting
/// panics into violations.
pub fn run_one(input: &FuzzInput, checks: Checks) -> Result<(), Violation> {
    let caught = catch_unwind(AssertUnwindSafe(|| run_checked(input, checks)));
    match caught {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            Err(violation(input, "no-panic", msg.to_string()))
        }
    }
}

/// The outcome of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iters: usize,
    /// Iterations that hit the expected-unplannable corner (channels 0–1).
    pub unplannable: usize,
    /// Every violation found, already shrunk.
    pub violations: Vec<Violation>,
}

impl FuzzReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fuzz: {} iterations, {} expected-unplannable, {} violation(s)\n",
            self.iters,
            self.unplannable,
            self.violations.len(),
        );
        for v in &self.violations {
            out.push_str(&format!("  {v}\n"));
        }
        out
    }
}

/// Runs `iters` seeded iterations starting at `seed0`. Expensive checks
/// run on a cadence (scratch-diff every 4th, receiver every 8th
/// iteration); a replay runs them all, so a cadence-found failure still
/// reproduces from its seed alone.
pub fn run_fuzz(seed0: u64, iters: usize) -> FuzzReport {
    let mut report = FuzzReport { iters, ..FuzzReport::default() };
    for i in 0..iters {
        let input = FuzzInput::generate(seed0.wrapping_add(i as u64));
        if input.bt_channel <= 1 {
            report.unplannable += 1;
        }
        let checks = Checks { scratch_diff: i % 4 == 0, receiver: i % 8 == 0 };
        if let Err(v) = run_one(&input, checks) {
            let minimized = shrink(
                &FuzzInput::generate(v.seed),
                &mut |candidate| run_one(candidate, Checks::all()).is_err(),
            );
            let mut v = v;
            v.input = format!("{minimized:?}");
            report.violations.push(v);
        }
    }
    report
}

/// Replays one seed with every check enabled.
pub fn replay(seed: u64) -> FuzzReport {
    let input = FuzzInput::generate(seed);
    let mut report = FuzzReport { iters: 1, ..FuzzReport::default() };
    if input.bt_channel <= 1 {
        report.unplannable = 1;
    }
    if let Err(v) = run_one(&input, Checks::all()) {
        report.violations.push(v);
    }
    report
}

/// Candidate one-step simplifications of an input, most aggressive first.
/// Every candidate moves a field toward its canonical simplest value, so
/// repeated application terminates.
fn candidates(x: &FuzzInput) -> Vec<FuzzInput> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut FuzzInput)| {
        let mut c = x.clone();
        f(&mut c);
        if c != *x {
            out.push(c);
        }
    };
    push(&|c| c.adv_len = 0);
    push(&|c| c.adv_len /= 2);
    push(&|c| c.multipath = None);
    push(&|c| c.interference = None);
    push(&|c| c.cfo_hz = 0);
    push(&|c| c.shadowing_x10 = 0);
    push(&|c| c.noise_floor_dbm_x10 = NOISE_OFF);
    push(&|c| c.distance_cm = 100);
    push(&|c| c.dynamic_scale = false);
    push(&|c| c.scale_milli = 200);
    push(&|c| c.realtime = false);
    push(&|c| c.pdu_type = 1);
    push(&|c| c.bt_channel = 24);
    push(&|c| c.ble_channel = 38);
    push(&|c| c.chip = 0);
    push(&|c| c.payload_seed = 0);
    out
}

/// Minimizes a failing input: repeatedly applies the first simplification
/// under which `still_fails` returns true, until none does. The result is
/// the canonical simplest input that still reproduces the failure.
pub fn shrink(input: &FuzzInput, still_fails: &mut dyn FnMut(&FuzzInput) -> bool) -> FuzzInput {
    let mut current = input.clone();
    loop {
        let mut improved = false;
        for c in candidates(&current) {
            if still_fails(&c) {
                current = c;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(FuzzInput::generate(42), FuzzInput::generate(42));
        assert_ne!(FuzzInput::generate(42), FuzzInput::generate(43));
    }

    #[test]
    fn realtime_inputs_are_bucketed() {
        for s in 0..200u64 {
            let x = FuzzInput::generate(s);
            if x.realtime {
                assert!(
                    matches!(x.adv_len, 0 | 8 | 16) || (x.dynamic_scale && x.adv_len <= 8),
                    "{x:?}"
                );
            }
            assert!(x.adv_len <= 16);
            assert!((37..=39).contains(&x.ble_channel));
            assert!(x.bt_channel <= 78);
        }
    }

    #[test]
    fn shrink_reaches_the_canonical_form_for_an_always_failing_predicate() {
        let x = FuzzInput::generate(7);
        let min = shrink(&x, &mut |_| true);
        assert_eq!(min.adv_len, 0);
        assert_eq!(min.multipath, None);
        assert_eq!(min.interference, None);
        assert_eq!(min.cfo_hz, 0);
        assert_eq!(min.shadowing_x10, 0);
        assert_eq!(min.noise_floor_dbm_x10, NOISE_OFF);
        assert!(!min.realtime);
        assert!(!min.dynamic_scale);
        assert_eq!(min.bt_channel, 24);
    }

    #[test]
    fn shrink_respects_the_predicate() {
        // A failure that depends on multipath being present must keep it.
        let mut x = FuzzInput::generate(9);
        x.multipath = Some((3, 120));
        let min = shrink(&x, &mut |c| c.multipath.is_some());
        assert!(min.multipath.is_some());
        // Everything orthogonal still shrinks.
        assert_eq!(min.adv_len, 0);
        assert_eq!(min.cfo_hz, 0);
    }

    #[test]
    fn shrink_never_returns_a_passing_input() {
        let x = FuzzInput::generate(11);
        // Predicate: fails iff adv_len ≥ 4 (so 0 would "pass").
        let min = shrink(&x.clone(), &mut |c| c.adv_len >= 4);
        if x.adv_len >= 4 {
            assert!(min.adv_len >= 4);
            assert!(min.adv_len <= x.adv_len);
        } else {
            assert_eq!(min, shrink(&x, &mut |c| c.adv_len >= 4));
        }
    }
}
