//! Differential bit-exactness matrix over the pipeline's execution paths.
//!
//! The synthesis kernel has accumulated five ways to run — the allocating
//! API (`synthesize_at`), the zero-alloc scratch API
//! (`synthesize_at_with`), the parallel batch engine (`SynthesisBatch`),
//! the `bluefi-service` daemon transport (requests over a unix socket,
//! results decoded from the wire format), and the template-cache patch
//! path (`CachedEngine`, compared cold vs
//! patched per payload-mutation cell) — plus orthogonal toggles: worker
//! count, telemetry recording level, and (at compile time) stage
//! contracts. All of them
//! must produce *bit-identical* packets: the matrix here runs the same job
//! set through every variant and compares the canonical word streams
//! (PSDU, flip set, scalar facts, final transmitted IQ) word-by-word,
//! reporting the exact diverging index and both values.
//!
//! Contracts cannot be toggled at runtime (`dsp::contracts::enabled()` is
//! `const`), so the report records which side of that axis this binary
//! was compiled on; the golden fixtures — shared between the debug test
//! profile and release CLI runs — close the contracts-on/off axis.

use crate::digest::{compare_words, words_of, Canon, Divergence};
use crate::trace::{ble_case_pdu, Chip};
use bluefi_bt::ble::{adv_air_bits, AdvPdu, AdvPduType};
use bluefi_core::pipeline::{BlueFi, PhaseMode, Synthesis, SynthesisScratch};
use bluefi_core::reversal::DecodeStrategy;
use bluefi_core::telemetry::{self, Level};
use bluefi_core::template::{CachedEngine, CachedScratch};
use bluefi_core::{BatchJob, SynthesisBatch};
use bluefi_service::{proto, ScratchBackend, Server, ServiceClient, ServiceConfig};
use bluefi_wifi::channels::{bt_channel_freq_hz, plan_channel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Worker counts the batch engine is exercised at.
pub const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Distinguishes concurrently-running matrix invocations' daemon sockets
/// (the telemetry-level sweep and the test harness both spin daemons in
/// one process).
static SOCKET_SERIAL: AtomicU64 = AtomicU64::new(0);

/// The outcome of one differential matrix run.
#[derive(Debug, Clone, Default)]
pub struct MatrixReport {
    /// Variant labels compared against the allocating reference.
    pub variants: Vec<String>,
    /// Jobs in the matrix (per chip).
    pub jobs: usize,
    /// Whether stage contracts were compiled into this binary.
    pub contracts_enabled: bool,
    /// Telemetry levels the matrix ran under.
    pub levels: Vec<&'static str>,
    /// Every divergence found (empty iff all variants are bit-identical).
    pub divergences: Vec<Divergence>,
}

impl MatrixReport {
    /// True when every variant matched the reference bit-for-bit.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "differential matrix: {} jobs × {} variants (levels: {}; contracts {}): ",
            self.jobs,
            self.variants.len(),
            self.levels.join("/"),
            if self.contracts_enabled { "on" } else { "off" },
        );
        if self.is_clean() {
            out.push_str("bit-identical\n");
        } else {
            out.push_str(&format!("{} divergence(s)\n", self.divergences.len()));
            for d in &self.divergences {
                out.push_str(&format!("  {d}\n"));
            }
        }
        out
    }
}

/// The matrix job set: three BLE advertising payloads of different lengths
/// on three different (plannable) Bluetooth carriers.
/// BT BR channels 10 / 24 / 50 → 2.412 / 2.426 / 2.452 GHz, all of
/// which sit well inside a 2.4 GHz WiFi channel (0–1 would not). The
/// `service` axis resends these channel numbers over the wire, so the
/// daemon re-derives the same plans [`matrix_jobs`] embeds.
pub const CARRIERS: [u8; 3] = [10, 24, 50];

/// The matrix job set: three BLE advertising payloads of different lengths
/// on the three [`CARRIERS`].
pub fn matrix_jobs(chip: Chip) -> Result<Vec<BatchJob>, String> {
    let data_lens = [0usize, 8, 16];
    let mut jobs = Vec::with_capacity(CARRIERS.len());
    for (i, (&bt_ch, &len)) in CARRIERS.iter().zip(&data_lens).enumerate() {
        let pdu = AdvPdu {
            pdu_type: AdvPduType::AdvNonconnInd,
            adv_address: [0xA0 + i as u8, 0x11, 0x22, 0x33, 0x44, 0x55],
            adv_data: ble_case_pdu().adv_data[..len].to_vec(),
            tx_add: false,
        };
        let freq = bt_channel_freq_hz(bt_ch);
        let plan = plan_channel(freq)
            .ok_or_else(|| format!("BT channel {bt_ch} ({freq} Hz) must be plannable"))?;
        jobs.push(BatchJob {
            bits: adv_air_bits(&pdu, 37 + (i as u8 % 3)),
            plan,
            seed: chip.seed(),
        });
    }
    Ok(jobs)
}

/// The canonical word stream of one synthesis result, including the
/// final transmitted IQ from the chip model.
fn result_words(syn: &Synthesis, chip: Chip) -> Vec<u64> {
    let model = chip.model();
    let ppdu = model.transmit_with_seed(&syn.psdu, syn.mcs, model.default_tx_dbm, syn.seed);
    let mut words = Vec::with_capacity(syn.psdu.len() + syn.flips.len() + 2 * ppdu.iq.len() + 8);
    (syn.psdu.len()).push_words(&mut words);
    words.extend(words_of(&syn.psdu));
    (syn.flips.len()).push_words(&mut words);
    words.extend(words_of(&syn.flips));
    syn.n_symbols.push_words(&mut words);
    syn.forced_bits.push_words(&mut words);
    syn.mean_quant_error_db.push_words(&mut words);
    words.extend(words_of(&ppdu.iq));
    words
}

fn compare_jobs(
    label: &str,
    reference: &[Vec<u64>],
    got: &[Synthesis],
    chip: Chip,
    out: &mut Vec<Divergence>,
) {
    for (j, (exp, syn)) in reference.iter().zip(got).enumerate() {
        let stage = format!("{}/{label}/job{j}", chip.name());
        if let Some(d) = compare_words(&stage, exp, &result_words(syn, chip)) {
            out.push(d);
        }
    }
}

fn run_chip(bf: &BlueFi, chip: Chip, report: &mut MatrixReport) -> Result<(), String> {
    let jobs = matrix_jobs(chip)?;
    report.jobs = jobs.len();

    // Reference: the allocating API, one job at a time.
    let reference: Vec<Vec<u64>> = jobs
        .iter()
        .map(|job| result_words(&bf.synthesize_at(&job.bits, job.plan, job.seed), chip))
        .collect();

    // Variant 1: the zero-alloc scratch API, one scratch reused across
    // jobs (the reuse is the point — stale state must not leak).
    let mut scratch = SynthesisScratch::new();
    let via_scratch: Vec<Synthesis> = jobs
        .iter()
        .map(|job| bf.synthesize_at_with(&job.bits, job.plan, job.seed, &mut scratch).clone())
        .collect();
    compare_jobs("scratch", &reference, &via_scratch, chip, &mut report.divergences);

    // Variants 2–4: the parallel batch engine at each worker count.
    for &n in &WORKER_COUNTS {
        let batch = SynthesisBatch::with_workers(bf, n).synthesize(&jobs);
        compare_jobs(
            &format!("batch{n}"),
            &reference,
            &batch,
            chip,
            &mut report.divergences,
        );
    }

    // Variant 5: the same jobs through the `bluefi-service` daemon.
    run_service_chip(bf, chip, &reference, report)
}

/// The `service` axis: responses fetched over the daemon's unix socket
/// must be word-identical to a direct in-process synthesis of the same
/// job. The daemon runs the scratch backend over the same pipeline the
/// reference uses, and the wire format round-trips every f64 as its
/// exact bit pattern, so the scalar facts must survive untouched too.
fn run_service_chip(
    bf: &BlueFi,
    chip: Chip,
    reference: &[Vec<u64>],
    report: &mut MatrixReport,
) -> Result<(), String> {
    let serial = SOCKET_SERIAL.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir()
        .join(format!("bluefi-conf-{}-{serial}.sock", std::process::id()));
    let path = path.to_string_lossy().to_string();
    let server = Server::spawn(
        &path,
        Arc::new(ScratchBackend::new(bf.clone())),
        ServiceConfig::default(),
    )
    .map_err(|e| format!("spawn conformance daemon: {e}"))?;
    let run = || -> Result<Vec<Synthesis>, String> {
        let mut client =
            ServiceClient::connect(&path).map_err(|e| format!("connect {path}: {e}"))?;
        client
            .set_timeout(std::time::Duration::from_secs(30))
            .map_err(|e| format!("set timeout: {e}"))?;
        let jobs = matrix_jobs(chip)?;
        let mut got = Vec::with_capacity(jobs.len());
        for (j, (job, &bt_ch)) in jobs.iter().zip(&CARRIERS).enumerate() {
            let result = client
                .synthesize(&job.bits, bt_ch, job.seed)
                .map_err(|e| format!("{}/service/job{j}: {e}", chip.name()))?;
            let syn = proto::synthesis_from_json(&result).ok_or_else(|| {
                format!("{}/service/job{j}: unparseable synthesis payload", chip.name())
            })?;
            got.push(syn);
        }
        Ok(got)
    };
    // Always tear the daemon down, even when a request failed.
    let got = run();
    server.shutdown();
    compare_jobs("service", reference, &got?, chip, &mut report.divergences);
    Ok(())
}

/// Byte masks for the mutation cells: distinct patterns so adjacent cells
/// cannot mask each other's divergences.
const MUTATION_MASKS: [u8; 3] = [0x01, 0xA5, 0xFF];

/// The `cached` engine axis: for every (channel, payload-mutation) cell,
/// the template-cache *patch* of a mutated payload must be bit-identical —
/// PSDU, flip set, scalar facts, transmitted IQ — to a cold synthesis of
/// that same payload on the anchored real-time pipeline. The engine is
/// primed with the unmutated base payload first, so every mutated request
/// is guaranteed to exercise the patch path, not the build path.
fn run_cached_chip(chip: Chip, report: &mut MatrixReport) -> Result<(), String> {
    let fleet = BlueFi {
        strategy: DecodeStrategy::Realtime,
        phase: PhaseMode::Anchored,
        ..BlueFi::default()
    };
    let engine = CachedEngine::new(fleet.clone());
    let mut scratch = CachedScratch::new();
    for (j, job) in matrix_jobs(chip)?.iter().enumerate() {
        engine.synthesize_at_with(&job.bits, job.plan, job.seed, &mut scratch);
        let n_bytes = job.bits.len() / 8;
        // Mutation cells: an early header byte, a mid-payload byte, and the
        // final byte (the beacon-counter position), each under its own mask.
        for (m, (&byte, &mask)) in
            [2usize, n_bytes / 2, n_bytes - 1].iter().zip(&MUTATION_MASKS).enumerate()
        {
            let mut bits = job.bits.clone();
            for bit in 0..8 {
                if mask >> bit & 1 == 1 {
                    bits[byte * 8 + bit] ^= true;
                }
            }
            let cold = result_words(&fleet.synthesize_at(&bits, job.plan, job.seed), chip);
            let patched =
                engine.synthesize_at_with(&bits, job.plan, job.seed, &mut scratch).clone();
            let stage = format!("{}/cached/job{j}/mut{m}", chip.name());
            if let Some(d) = compare_words(&stage, &cold, &result_words(&patched, chip)) {
                report.divergences.push(d);
            }
        }
    }
    Ok(())
}

/// Runs the execution-path matrix for both chip models at the current
/// telemetry level.
pub fn run_matrix() -> Result<MatrixReport, String> {
    let bf = BlueFi::default();
    let mut report = MatrixReport {
        variants: ["scratch".to_string()]
            .into_iter()
            .chain(WORKER_COUNTS.iter().map(|n| format!("batch{n}")))
            .chain(["service".to_string(), "cached".to_string()])
            .collect(),
        contracts_enabled: bluefi_dsp::contracts::enabled(),
        levels: vec![telemetry::level().name()],
        ..MatrixReport::default()
    };
    for chip in [Chip::Ar9331, Chip::Rtl8811au] {
        run_chip(&bf, chip, &mut report)?;
        run_cached_chip(chip, &mut report)?;
    }
    Ok(report)
}

/// Runs the full matrix once per telemetry recording level (off, counters,
/// spans), restoring the prior level afterwards. Telemetry level is global
/// process state, so callers running tests in parallel must isolate this
/// in its own test binary.
pub fn run_matrix_at_levels() -> Result<MatrixReport, String> {
    let prior = telemetry::level();
    let mut combined = MatrixReport::default();
    let mut reference_off: Option<Vec<u64>> = None;
    let bf = BlueFi::default();
    for level in [Level::Off, Level::Counters, Level::Spans] {
        telemetry::set_level(level);
        let r = run_matrix();
        // Restore before propagating any error.
        if let Err(e) = &r {
            telemetry::set_level(prior);
            return Err(e.clone());
        }
        let mut r = r.unwrap_or_default();
        combined.variants = r.variants.clone();
        combined.jobs = r.jobs;
        combined.contracts_enabled = r.contracts_enabled;
        combined.levels.push(level.name());
        for d in &mut r.divergences {
            d.stage = format!("{}@{}", d.stage, level.name());
        }
        combined.divergences.append(&mut r.divergences);

        // Cross-level check: the level must not change the waveform. One
        // job's words at `Off` serve as the fixture for the other levels.
        let job = matrix_jobs(Chip::Ar9331).and_then(|js| {
            js.into_iter().next().ok_or_else(|| "empty job set".to_string())
        });
        match job {
            Ok(job) => {
                let words =
                    result_words(&bf.synthesize_at(&job.bits, job.plan, job.seed), Chip::Ar9331);
                match &reference_off {
                    None => reference_off = Some(words),
                    Some(exp) => {
                        let stage = format!("ar9331/level-{}/job0", level.name());
                        if let Some(d) = compare_words(&stage, exp, &words) {
                            combined.divergences.push(d);
                        }
                    }
                }
            }
            Err(e) => {
                telemetry::set_level(prior);
                return Err(e);
            }
        }
    }
    telemetry::set_level(prior);
    Ok(combined)
}
