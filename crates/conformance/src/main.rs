//! Conformance CLI: regenerate/check golden fixtures, run the
//! differential matrix, and drive the deterministic fuzzer.
//!
//! ```text
//! cargo run -p bluefi-conformance --release -- regen
//! cargo run -p bluefi-conformance --release -- check
//! cargo run -p bluefi-conformance --release -- diff [--levels]
//! cargo run -p bluefi-conformance --release -- fuzz [--iters N] [--seed0 S]
//! cargo run -p bluefi-conformance --release -- fuzz --replay <seed>
//! ```

use bluefi_conformance::{golden, replay, run_fuzz, run_matrix, run_matrix_at_levels};

const USAGE: &str = "usage: bluefi-conformance <regen|check|diff [--levels]|fuzz [--iters N] [--seed0 S] [--replay SEED]>";

fn parse_flag(args: &[String], flag: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse::<u64>()
            .map(Some)
            .map_err(|e| format!("{flag}: {e}")),
    }
}

fn run() -> Result<i32, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = golden::default_dir();
    match args.first().map(String::as_str) {
        Some("regen") => {
            let written = golden::regen_all(&dir)?;
            for p in &written {
                println!("wrote {}", p.display());
            }
            println!("regenerated {} fixtures", written.len());
            Ok(0)
        }
        Some("check") => {
            let report = golden::check_all(&dir)?;
            print!("{}", report.render());
            Ok(if report.is_clean() { 0 } else { 1 })
        }
        Some("diff") => {
            let report = if args.iter().any(|a| a == "--levels") {
                run_matrix_at_levels()?
            } else {
                run_matrix()?
            };
            print!("{}", report.render());
            Ok(if report.is_clean() { 0 } else { 1 })
        }
        Some("fuzz") => {
            if let Some(seed) = parse_flag(&args, "--replay")? {
                let report = replay(seed);
                print!("{}", report.render());
                return Ok(if report.is_clean() { 0 } else { 1 });
            }
            let iters = parse_flag(&args, "--iters")?.unwrap_or(1000) as usize;
            let seed0 = parse_flag(&args, "--seed0")?.unwrap_or(0);
            let report = run_fuzz(seed0, iters);
            print!("{}", report.render());
            Ok(if report.is_clean() { 0 } else { 1 })
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
