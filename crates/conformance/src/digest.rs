//! Canonical encodings and FNV-1a digests for conformance vectors.
//!
//! Every pipeline stage is reduced to a flat stream of `u64` words with a
//! fixed, type-driven encoding (bits become 0/1 words, `f64`s their IEEE
//! bit pattern, complex samples a re/im word pair). Digesting the word
//! stream — rather than a float-formatted rendering — makes the golden
//! vectors *bit*-exact: two runs match iff every sample is identical down
//! to the last mantissa bit.
//!
//! A [`StageVector`] additionally keeps running-digest **checkpoints**
//! every [`CHECKPOINT_WORDS`] words and the literal first
//! [`PREFIX_WORDS`] words, so a mismatch is localized (stage, word window,
//! and — inside the prefix — the exact word with both values) instead of a
//! bare "digest differs".

use bluefi_dsp::Cx;

/// Number of leading words stored verbatim in a fixture.
pub const PREFIX_WORDS: usize = 64;

/// Word interval between running-digest checkpoints.
pub const CHECKPOINT_WORDS: usize = 2048;

/// 64-bit FNV-1a over little-endian word bytes.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// The standard FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xCBF2_9CE4_8422_2325)
    }

    /// Absorbs one word (as 8 little-endian bytes).
    pub fn write_u64(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// Types with a canonical `u64`-word encoding.
pub trait Canon {
    /// Appends this value's words to `out`.
    fn push_words(&self, out: &mut Vec<u64>);
}

impl Canon for bool {
    fn push_words(&self, out: &mut Vec<u64>) {
        out.push(*self as u64);
    }
}

impl Canon for u8 {
    fn push_words(&self, out: &mut Vec<u64>) {
        out.push(*self as u64);
    }
}

impl Canon for u32 {
    fn push_words(&self, out: &mut Vec<u64>) {
        out.push(*self as u64);
    }
}

impl Canon for usize {
    fn push_words(&self, out: &mut Vec<u64>) {
        out.push(*self as u64);
    }
}

impl Canon for f64 {
    fn push_words(&self, out: &mut Vec<u64>) {
        out.push(self.to_bits());
    }
}

impl Canon for Cx {
    fn push_words(&self, out: &mut Vec<u64>) {
        out.push(self.re.to_bits());
        out.push(self.im.to_bits());
    }
}

/// The canonical word stream of a slice.
pub fn words_of<T: Canon>(items: &[T]) -> Vec<u64> {
    let mut out = Vec::with_capacity(items.len() * 2);
    for v in items {
        v.push_words(&mut out);
    }
    out
}

/// One stage boundary reduced to (length, prefix, checkpoints, digest).
///
/// This is what a fixture commits per stage; the full word stream is never
/// stored, so the on-disk vectors stay small while divergences are still
/// localized to a [`CHECKPOINT_WORDS`] window (exactly, inside the prefix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageVector {
    /// Stage name in chain order (e.g. `scrambled`, `coded`, `final_iq`).
    pub stage: String,
    /// Number of source elements captured.
    pub elems: usize,
    /// Number of canonical words (elements × words-per-element).
    pub words: usize,
    /// Full-stream FNV-1a digest (length-seeded).
    pub digest: u64,
    /// Running digest after every [`CHECKPOINT_WORDS`] words.
    pub checkpoints: Vec<u64>,
    /// The literal first [`PREFIX_WORDS`] words.
    pub prefix: Vec<u64>,
}

impl StageVector {
    /// Captures a stage from its elements.
    pub fn capture<T: Canon>(stage: &str, items: &[T]) -> StageVector {
        StageVector::from_words(stage, items.len(), &words_of(items))
    }

    /// Captures a stage from an already-encoded word stream.
    pub fn from_words(stage: &str, elems: usize, words: &[u64]) -> StageVector {
        let mut h = Fnv64::new();
        h.write_u64(elems as u64);
        h.write_u64(words.len() as u64);
        let mut checkpoints = Vec::new();
        for (i, &w) in words.iter().enumerate() {
            h.write_u64(w);
            if (i + 1) % CHECKPOINT_WORDS == 0 {
                checkpoints.push(h.finish());
            }
        }
        StageVector {
            stage: stage.to_string(),
            elems,
            words: words.len(),
            digest: h.finish(),
            checkpoints,
            prefix: words[..words.len().min(PREFIX_WORDS)].to_vec(),
        }
    }

    /// Compares against a fixture-loaded expectation, returning the first
    /// divergence in localization order: length, prefix word, checkpoint
    /// window, then whole-stream digest.
    pub fn first_divergence(&self, expected: &StageVector) -> Option<Divergence> {
        let mk = |kind: &str, index: usize, exp: String, got: String| Divergence {
            stage: expected.stage.clone(),
            kind: kind.to_string(),
            index,
            expected: exp,
            got,
        };
        if self.elems != expected.elems || self.words != expected.words {
            return Some(mk(
                "length",
                0,
                format!("{} elems / {} words", expected.elems, expected.words),
                format!("{} elems / {} words", self.elems, self.words),
            ));
        }
        for (i, (g, e)) in self.prefix.iter().zip(&expected.prefix).enumerate() {
            if g != e {
                return Some(mk("prefix-word", i, format!("{e:#018x}"), format!("{g:#018x}")));
            }
        }
        for (i, (g, e)) in self.checkpoints.iter().zip(&expected.checkpoints).enumerate() {
            if g != e {
                return Some(mk(
                    "checkpoint",
                    i * CHECKPOINT_WORDS,
                    format!("{e:#018x}"),
                    format!("{g:#018x}"),
                ));
            }
        }
        if self.digest != expected.digest {
            return Some(mk(
                "digest",
                self.words,
                format!("{:#018x}", expected.digest),
                format!("{:#018x}", self.digest),
            ));
        }
        None
    }
}

/// Word-exact comparison of two in-memory streams (used by the
/// differential harness, where both sides are fully materialized and the
/// exact diverging index is always available).
pub fn compare_words(stage: &str, expected: &[u64], got: &[u64]) -> Option<Divergence> {
    if expected.len() != got.len() {
        return Some(Divergence {
            stage: stage.to_string(),
            kind: "length".to_string(),
            index: 0,
            expected: format!("{} words", expected.len()),
            got: format!("{} words", got.len()),
        });
    }
    for (i, (e, g)) in expected.iter().zip(got).enumerate() {
        if e != g {
            return Some(Divergence {
                stage: stage.to_string(),
                kind: "word".to_string(),
                index: i,
                expected: format!("{e:#018x}"),
                got: format!("{g:#018x}"),
            });
        }
    }
    None
}

/// A localized bit-exactness failure: which stage, where, and both values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Stage (or variant/field) name.
    pub stage: String,
    /// What diverged: `length`, `prefix-word`, `checkpoint`, `digest`,
    /// `word`, or `meta:<key>`.
    pub kind: String,
    /// Word index of the divergence (window start for `checkpoint`).
    pub index: usize,
    /// The expected value at that point.
    pub expected: String,
    /// The value actually observed.
    pub got: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stage `{}`: first divergence at {} word {}: expected {}, got {}",
            self.stage, self.kind, self.index, self.expected, self.got
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluefi_dsp::cx;

    #[test]
    fn digest_depends_on_every_word_and_length() {
        let a = StageVector::capture("s", &[true, false, true]);
        let b = StageVector::capture("s", &[true, false, false]);
        let c = StageVector::capture("s", &[true, false]);
        assert_ne!(a.digest, b.digest);
        assert_ne!(a.digest, c.digest);
        assert_eq!(a, StageVector::capture("s", &[true, false, true]));
    }

    #[test]
    fn complex_encoding_is_bit_exact() {
        let a = StageVector::capture("iq", &[cx(1.0, -0.0)]);
        let b = StageVector::capture("iq", &[cx(1.0, 0.0)]);
        // -0.0 and 0.0 compare equal as floats but are different bits: the
        // canonical encoding must distinguish them.
        assert_ne!(a.digest, b.digest);
        assert_eq!(a.elems, 1);
        assert_eq!(a.words, 2);
    }

    #[test]
    fn prefix_divergence_reports_exact_word() {
        let mut x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let a = StageVector::capture("phase", &x);
        x[3] = 3.5;
        let b = StageVector::capture("phase", &x);
        let d = b.first_divergence(&a).expect("must diverge");
        assert_eq!(d.kind, "prefix-word");
        assert_eq!(d.index, 3);
        assert_eq!(d.expected, format!("{:#018x}", 3.0f64.to_bits()));
        assert_eq!(d.got, format!("{:#018x}", 3.5f64.to_bits()));
    }

    #[test]
    fn checkpoint_divergence_localizes_beyond_the_prefix() {
        let mut x: Vec<bool> = (0..3 * CHECKPOINT_WORDS).map(|i| i % 3 == 0).collect();
        let a = StageVector::capture("bits", &x);
        let flip = CHECKPOINT_WORDS + 17;
        x[flip] = !x[flip];
        let b = StageVector::capture("bits", &x);
        let d = b.first_divergence(&a).expect("must diverge");
        assert_eq!(d.kind, "checkpoint");
        // The flip sits in the second checkpoint window.
        assert_eq!(d.index, CHECKPOINT_WORDS);
    }

    #[test]
    fn tail_divergence_falls_back_to_the_digest() {
        // Shorter than a checkpoint window, longer than the prefix: only
        // the final digest can see a tail flip.
        let mut x: Vec<bool> = (0..PREFIX_WORDS + 10).map(|i| i % 2 == 0).collect();
        let a = StageVector::capture("bits", &x);
        let last = x.len() - 1;
        x[last] = !x[last];
        let b = StageVector::capture("bits", &x);
        let d = b.first_divergence(&a).expect("must diverge");
        assert_eq!(d.kind, "digest");
    }

    #[test]
    fn length_divergence_wins() {
        let a = StageVector::capture("bits", &[true; 8]);
        let b = StageVector::capture("bits", &[true; 9]);
        let d = b.first_divergence(&a).expect("must diverge");
        assert_eq!(d.kind, "length");
    }

    #[test]
    fn identical_vectors_do_not_diverge() {
        let x: Vec<u32> = (0..5000).collect();
        let a = StageVector::capture("w", &x);
        assert!(a.first_divergence(&a.clone()).is_none());
    }

    #[test]
    fn compare_words_pinpoints_the_index() {
        let a = [1u64, 2, 3, 4];
        let b = [1u64, 2, 9, 4];
        let d = compare_words("s", &a, &b).expect("diverges");
        assert_eq!((d.kind.as_str(), d.index), ("word", 2));
        assert!(compare_words("s", &a, &a).is_none());
    }
}
