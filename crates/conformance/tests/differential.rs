//! Differential layer: every execution path of the synthesis pipeline
//! must produce bit-identical packets and waveforms.
//!
//! This lives in its own test binary because `run_matrix_at_levels`
//! toggles the process-global telemetry level; Rust runs separate test
//! binaries in separate processes, so no other test observes the toggles.

use bluefi_conformance::{run_matrix, run_matrix_at_levels};
use bluefi_core::telemetry;

#[test]
fn all_execution_paths_are_bit_identical_across_telemetry_levels() {
    let before = telemetry::level();
    let report = run_matrix_at_levels().expect("matrix runs");
    assert_eq!(telemetry::level(), before, "level must be restored");

    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.jobs, 3);
    assert_eq!(
        report.variants,
        ["scratch", "batch1", "batch2", "batch4", "service", "cached"],
        "variant set drifted"
    );
    assert_eq!(report.levels, ["off", "counters", "spans"]);
    // The report records which side of the compile-time contracts axis
    // this binary is on; tests build with debug_assertions, so contracts
    // are active here while the release CLI covers the off side against
    // the same fixtures.
    assert_eq!(
        report.contracts_enabled,
        cfg!(debug_assertions),
        "contracts axis must be recorded faithfully"
    );
    let rendered = report.render();
    assert!(rendered.contains("bit-identical"), "{rendered}");
}

#[test]
fn single_level_matrix_is_clean_too() {
    let report = run_matrix().expect("matrix runs");
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.levels.len(), 1);
}
