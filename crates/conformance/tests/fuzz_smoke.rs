//! Fuzzer layer: budgeted smoke soak, replay determinism, and shrinker
//! behaviour on the real invariant checker.

use bluefi_conformance::fuzz::{run_one, Checks};
use bluefi_conformance::{replay, run_fuzz, shrink, FuzzInput};

#[test]
fn budgeted_soak_finds_no_violations() {
    // 500 iterations: with the packed trellis engine on the decode path
    // this soak now exercises every kernel dispatch (unweighted u16,
    // weighted u16/u32, the memoized repeat path) while crossing the
    // scratch-diff (every 4th) and receiver (every 8th) cadences dozens
    // of times — and still finishes in seconds under the debug profile.
    let report = run_fuzz(0xB10E_F1, 500);
    assert_eq!(report.iters, 500);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn replay_is_deterministic() {
    for seed in [0u64, 3, 16, 999] {
        let a = replay(seed);
        let b = replay(seed);
        assert_eq!(a.violations, b.violations, "seed {seed}");
        assert_eq!(a.unplannable, b.unplannable, "seed {seed}");
        assert_eq!(a.render(), b.render(), "seed {seed}");
    }
}

#[test]
fn replay_runs_every_check_a_soak_would() {
    // Any seed a cadence-gated soak flags must also fail under replay;
    // replay therefore runs with all checks on. Spot-check that the
    // all-checks path agrees with itself and with the report.
    let input = FuzzInput::generate(5);
    let direct = run_one(&input, Checks::all());
    let report = replay(5);
    assert_eq!(direct.is_err(), !report.is_clean());
}

#[test]
fn shrinker_minimizes_against_the_real_checker_shape() {
    // Inject a structural predicate (a stand-in for a real failure that
    // needs a long payload under the realtime strategy) and verify the
    // minimum keeps exactly the failure-relevant structure.
    let mut x = FuzzInput::generate(77);
    x.realtime = true;
    x.adv_len = 16;
    let min = shrink(&x, &mut |c| c.realtime && c.adv_len >= 8);
    assert!(min.realtime, "failure-relevant field must survive");
    assert_eq!(min.adv_len, 8, "payload shrinks to the boundary");
    assert_eq!(min.multipath, None);
    assert_eq!(min.interference, None);
    assert_eq!(min.cfo_hz, 0);
    assert_eq!(min.payload_seed, 0);
}
