//! CLI layer: the tier-1 smoke path drives the conformance binary the
//! same way CI does — `bluefi-conformance check` against the committed
//! golden fixtures — so exit codes and rendering stay wired to the
//! library verdicts, not just the in-process `check_all` the golden
//! tests exercise.

use std::process::Command;

fn conformance(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bluefi-conformance"))
        .args(args)
        .output()
        .expect("conformance binary must launch")
}

#[test]
fn check_subcommand_passes_on_committed_fixtures() {
    let out = conformance(&["check"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "exit: {:?}\n{stdout}", out.status);
    assert!(stdout.contains("5 fixtures OK"), "{stdout}");
}

#[test]
fn bad_usage_exits_with_distinct_code() {
    let out = conformance(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "usage errors must exit 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
