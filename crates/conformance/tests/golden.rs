//! Golden-vector layer: the committed fixtures must match the current
//! code, and any single-bit drift must be localized to its stage.

use bluefi_conformance::golden::{check_all, default_dir, regen_all};

#[test]
fn committed_fixtures_match_current_code() {
    let report = check_all(&default_dir()).expect("fixtures readable");
    assert_eq!(report.checked.len(), 5, "{:?}", report.checked);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn one_bit_perturbation_fails_with_a_localized_report() {
    // Regenerate into a scratch dir, flip one bit of one stored prefix
    // word, and verify the checker pinpoints stage + word index.
    let dir = std::env::temp_dir()
        .join(format!("bluefi-conformance-perturb-{}", std::process::id()));
    let written = regen_all(&dir).expect("regen");
    let target = written
        .iter()
        .find(|p| p.to_string_lossy().contains("ble_adv_ar9331"))
        .expect("ble fixture written");
    let text = std::fs::read_to_string(target).expect("read fixture");
    let marker = "\"prefix\":[\"";
    let at = text.find(marker).expect("fixture has a prefix array") + marker.len();
    let mut bytes = text.into_bytes();
    // Perturb the first prefix word's last hex digit (stays valid hex).
    let digit = at + 15;
    bytes[digit] = if bytes[digit] == b'0' { b'1' } else { b'0' };
    std::fs::write(target, &bytes).expect("write perturbed fixture");

    let report = check_all(&dir).expect("check runs");
    std::fs::remove_dir_all(&dir).ok();

    assert!(!report.is_clean(), "perturbation must be detected");
    assert_eq!(report.divergences.len(), 1, "{}", report.render());
    let d = &report.divergences[0];
    assert!(d.stage.starts_with("ble_adv_ar9331/"), "stage: {}", d.stage);
    assert_eq!(d.kind, "prefix-word");
    assert_eq!(d.index, 0, "first prefix word was perturbed");
    assert_ne!(d.expected, d.got);
    // The rendered report names the stage and both values.
    let rendered = report.render();
    assert!(rendered.contains("prefix-word"), "{rendered}");
    assert!(rendered.contains(&d.expected), "{rendered}");
}

#[test]
fn digest_drift_beyond_the_prefix_is_still_caught() {
    let dir = std::env::temp_dir()
        .join(format!("bluefi-conformance-digest-{}", std::process::id()));
    let written = regen_all(&dir).expect("regen");
    let target = written
        .iter()
        .find(|p| p.to_string_lossy().contains("edr_rtl8811au"))
        .expect("edr fixture written");
    let text = std::fs::read_to_string(target).expect("read fixture");
    let marker = "\"digest\":\"";
    let at = text.find(marker).expect("fixture has a digest") + marker.len();
    let mut bytes = text.into_bytes();
    let digit = at + 15;
    bytes[digit] = if bytes[digit] == b'0' { b'1' } else { b'0' };
    std::fs::write(target, &bytes).expect("write perturbed fixture");

    let report = check_all(&dir).expect("check runs");
    std::fs::remove_dir_all(&dir).ok();

    assert!(!report.is_clean());
    let d = &report.divergences[0];
    assert!(d.stage.starts_with("edr_rtl8811au/"), "stage: {}", d.stage);
    assert_eq!(d.kind, "digest");
}
