//! The Sec 2.6 frequency planner as a CLI: for every Bluetooth BR channel,
//! which WiFi channel BlueFi would pick, where the signal lands, and the
//! clearance to the nearest pilot/null.
//!
//! Run: `cargo run --release --example channel_planner`

use bluefi::wifi::channels::{bt_channel_freq_hz, plan_channel};

fn main() {
    println!("bt ch   MHz    wifi ch   subcarrier   tx subcarrier  clearance");
    for k in 0..=78u8 {
        let f = bt_channel_freq_hz(k);
        match plan_channel(f) {
            None => println!("{k:>5}  {:>6.0}  (not coverable by any 2.4 GHz WiFi channel)", f / 1e6),
            Some(p) => println!(
                "{k:>5}  {:>6.0}  {:>7}   {:>+10.1}   {:>+13.1}  {:>9.1}",
                f / 1e6,
                p.wifi_channel,
                p.subcarrier,
                p.tx_subcarrier,
                p.clearance
            ),
        }
    }
    println!("\nBLE advertising channels: 37 = 2402 (uncoverable), 38 = 2426 \
              (WiFi ch 3), 39 = 2480 (WiFi ch 13, edge).");
}
