//! BlueFi as a service: spin the synthesis daemon on a unix socket, then
//! talk to it over the wire exactly like an external client would — the
//! packet below crosses a real socket as length-prefixed JSON-RPC even
//! though both ends live in this process.
//!
//! Run: `cargo run --release --example service_client`
//!
//! To talk to an already-running daemon instead (see `bluefi-serviced`),
//! pass its socket path:
//! `cargo run --release --example service_client -- /tmp/bluefi.sock`

use bluefi::bt::ble::{adv_air_bits, AdvPdu, AdvPduType};
use bluefi::core::pipeline::BlueFi;
use bluefi_core::json::Json;
use bluefi_service::{ScratchBackend, Server, ServiceClient, ServiceConfig};
use std::sync::Arc;

fn main() {
    // With no argument, host the daemon in-process on a temp socket.
    let (path, server) = match std::env::args().nth(1) {
        Some(p) => (p, None),
        None => {
            let p = std::env::temp_dir().join(format!("bluefi-example-{}.sock", std::process::id()));
            let p = p.to_string_lossy().to_string();
            let server = Server::spawn(
                &p,
                Arc::new(ScratchBackend::new(BlueFi::default())),
                ServiceConfig::default(),
            )
            .expect("bind example socket");
            println!("daemon listening on {p}");
            (p, Some(server))
        }
    };

    // An iBeacon-shaped advertisement, same as the quickstart.
    let pdu = AdvPdu {
        pdu_type: AdvPduType::AdvNonconnInd,
        adv_address: [0xB1, 0x0E, 0xF1, 0x00, 0x00, 0x01],
        adv_data: vec![0x02, 0x01, 0x06, 0x05, 0x09, b'B', b'l', b'u', b'e'],
        tx_add: false,
    };
    let bits = adv_air_bits(&pdu, 38);

    let mut client = ServiceClient::connect(&path).expect("connect to daemon");
    client.set_timeout(std::time::Duration::from_secs(30)).expect("set timeout");

    // One synthesize round-trip: BT channel 24 (2426 MHz), scrambler seed 71.
    let result = client.synthesize(&bits, 24, 71).expect("synthesize over the wire");
    let num = |k: &str| result.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    let psdu_hex_chars = result.get("psdu").and_then(Json::as_str).map_or(0, str::len);
    println!(
        "synthesized over the socket: {} PSDU bytes, {} OFDM symbols, \
         MCS index {}, WiFi channel {}, seed {}",
        psdu_hex_chars / 2,
        num("n_symbols"),
        num("mcs_index"),
        num("wifi_channel"),
        num("seed"),
    );

    let stats = client.stats(false).expect("stats");
    let service = stats.get("service").expect("service stats object");
    println!(
        "daemon stats: {} request(s), {} ok, {} shed, state {}",
        service.get("requests").and_then(Json::as_f64).unwrap_or(f64::NAN),
        service.get("ok").and_then(Json::as_f64).unwrap_or(f64::NAN),
        service.get("shed").and_then(Json::as_f64).unwrap_or(f64::NAN),
        stats.get("state").and_then(Json::as_str).unwrap_or("?"),
    );

    // Only drain the daemon we spawned; leave an external one running.
    if let Some(server) = server {
        client.drain().expect("drain");
        server.shutdown();
        println!("daemon drained and stopped");
    }
}
