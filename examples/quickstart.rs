//! Quickstart: synthesize a Bluetooth beacon as an 802.11n PSDU, "transmit"
//! it with a modeled COTS WiFi chip, and decode it with a modeled, fully
//! unmodified Bluetooth receiver.
//!
//! Run: `cargo run --release --example quickstart`

use bluefi::bt::ble::{adv_air_bits, AdvDecode, AdvPdu, AdvPduType};
use bluefi::core::pipeline::BlueFi;
use bluefi::core::verify::{loopback_ble, transmit, tuned_receiver};
use bluefi::wifi::ChipModel;

fn main() {
    // 1. A Bluetooth LE advertising packet (what a beacon broadcasts).
    let pdu = AdvPdu {
        pdu_type: AdvPduType::AdvNonconnInd,
        adv_address: [0xB1, 0x0E, 0xF1, 0x00, 0x00, 0x01],
        adv_data: vec![0x02, 0x01, 0x06, 0x05, 0x09, b'B', b'l', b'u', b'e'],
        tx_add: false,
    };
    let air_bits = adv_air_bits(&pdu, 38); // BLE channel 38 = 2426 MHz

    // 2. BlueFi: find the 802.11n PSDU whose transmission IS that packet.
    let bluefi = BlueFi::default();
    let syn = bluefi
        .synthesize(&air_bits, 2.426e9, 1)
        .expect("2426 MHz is coverable by WiFi channel 3");
    println!(
        "synthesized {} PSDU bytes at MCS{} on WiFi channel {} \
         (BT center at subcarrier {:+.1}, tx at {:+.1})",
        syn.psdu.len(),
        syn.mcs.index,
        syn.plan.wifi_channel,
        syn.plan.subcarrier,
        syn.plan.tx_subcarrier,
    );
    println!(
        "  {} OFDM symbols, {} FEC bit-flips (all out-of-band), \
         in-band quantization error {:.1} dB",
        syn.n_symbols,
        syn.flips.len(),
        syn.mean_quant_error_db
    );

    // 3. An unmodified 802.11n chip transmits it...
    let chip = ChipModel::ar9331();
    let ppdu = transmit(&syn, &chip, 18.0);
    println!("  chip {} sends {} IQ samples ({:.1} µs airtime)", chip.name, ppdu.iq.len(), ppdu.airtime_us());

    // 4. ...and an unmodified Bluetooth receiver decodes it.
    let result = loopback_ble(&syn, &chip, 38);
    match result.decode {
        Some(AdvDecode::Ok(got)) => {
            println!(
                "  decoded OK: rssi {:.1} dBm, AdvA {:02X?}",
                result.rssi_dbm.unwrap(),
                got.adv_address
            );
            assert_eq!(got, pdu);
        }
        other => println!("  decode outcome: {other:?} (rssi {:?})", result.rssi_dbm),
    }

    // 5. Receiver internals, if you want to look deeper:
    let rx = tuned_receiver(&syn);
    let (alpha, beta) = rx.isi_model();
    println!("  receiver ISI model: alpha {alpha:.4}, beta {beta:.4} cycles/sample");
}
