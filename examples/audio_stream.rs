//! Real-time A2DP audio over BlueFi (the paper's second app): PCM is
//! SBC-encoded, packed into RTP/L2CAP media packets, scheduled into
//! Bluetooth time slots on the 3 best channels under one WiFi channel, and
//! each DH5 packet is synthesized with the real-time decoder — then pushed
//! through the channel to a sniffer-style receiver.
//!
//! Run: `cargo run --release --example audio_stream`

use bluefi::apps::audio::{A2dpStreamer, AudioConfig};
use bluefi::bt::receiver::{GfskReceiver, ReceiverConfig};
use bluefi::sim::channel::{Channel, ChannelConfig};
use bluefi::wifi::channels::{bt_channel_freq_hz, subcarrier_in_channel};
use bluefi::wifi::subcarriers::SUBCARRIER_SPACING_HZ;
use bluefi::wifi::ChipModel;
use bluefi::core::rng::{SeedableRng, StdRng};

fn main() {
    let cfg = AudioConfig::default();
    let mut streamer = A2dpStreamer::new(cfg.clone());
    println!("audio channels (best clearance first): {:?}", streamer.audio_channels());

    // 0.25 s of a 440 Hz tone at 44.1 kHz, mono.
    let pcm: Vec<f64> = (0..128 * 86)
        .map(|i| (2.0 * std::f64::consts::PI * 440.0 * i as f64 / 44_100.0).sin() * 0.4)
        .collect();
    let media = streamer.media_packets(&pcm);
    println!("encoded {} SBC media packets ({} bytes each)", media.len(), media[0].len());

    // Schedule the first few into slots (each DH5 synthesis is real-time
    // capable: the paper's O(T) decoder).
    let sched = streamer.schedule(&media[..4.min(media.len())], 1000);
    let chip = ChipModel::rtl8811au();
    let channel = Channel::new(ChannelConfig::office(1.5));
    let mut rng = StdRng::seed_from_u64(0xA0D10);
    let mut ok = 0;
    for p in &sched {
        let sc = subcarrier_in_channel(bt_channel_freq_hz(p.bt_channel), cfg.wifi_channel);
        let rx = GfskReceiver::new(ReceiverConfig {
            channel_offset_hz: sc * SUBCARRIER_SPACING_HZ,
            ..Default::default()
        });
        let ppdu = chip.transmit_with_seed(&p.synthesis.psdu, p.synthesis.mcs, 18.0, 71);
        let rx_wave = channel.apply(&ppdu.iq, &mut rng);
        let out = rx.receive_br(&rx_wave, cfg.addr.lap, cfg.addr.uap, p.clk6_1);
        let verdict = match &out.decode {
            Some(bluefi::bt::br::BrDecode::Ok { payload, .. }) if *payload == p.payload => {
                ok += 1;
                "OK"
            }
            Some(bluefi::bt::br::BrDecode::Ok { .. }) => "ok (payload mismatch)",
            Some(bluefi::bt::br::BrDecode::CrcError { .. }) => "CRC error",
            _ => "lost",
        };
        println!(
            "  slot {:>5} ch {:>2} ({} bytes): {}",
            p.slot,
            p.bt_channel,
            p.payload.len(),
            verdict
        );
    }
    println!("{}/{} audio packets through the air cleanly", ok, sched.len());
}
