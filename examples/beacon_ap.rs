//! An access point as a Bluetooth beacon (the paper's headline app):
//! a remotely-pushable config selects the beacon format; the service
//! synthesizes one PSDU per advertising channel and "broadcasts" on a
//! schedule, while three phone models listen at different distances.
//!
//! Run: `cargo run --release --example beacon_ap`

use bluefi::apps::beacon::{build_beacon, BeaconConfig, BeaconFormat};
use bluefi::core::pipeline::BlueFi;
use bluefi::sim::devices::DeviceModel;
use bluefi::sim::experiments::{run_beacon_session, SessionConfig, TxKind};
use bluefi::wifi::ChipModel;

fn main() {
    // The config a cloud controller would push over SSH/netconf.
    let cfg = BeaconConfig {
        format: BeaconFormat::EddystoneUrl {
            tx_power: -20,
            scheme: 0x03, // https://
            body: b"bluefi.example".to_vec(),
        },
        ..Default::default()
    };
    println!("beacon config: {:?}", cfg.format);

    let packets = build_beacon(&cfg, &BlueFi::default(), 1).expect("valid channels");
    for (ch, syn) in &packets.per_channel {
        println!(
            "  BLE channel {ch}: WiFi channel {}, {} bytes PSDU, {} symbols",
            syn.plan.wifi_channel,
            syn.psdu.len(),
            syn.n_symbols
        );
    }

    // Phones at different desks hear it:
    for device in DeviceModel::all_phones() {
        for dist in [0.5, 2.0, 5.0] {
            let mut s = SessionConfig::office(device.clone(), dist);
            s.duration_s = 10.0;
            let kind = TxKind::BlueFi { chip: ChipModel::ar9331(), tx_dbm: 18.0 };
            let trace = run_beacon_session(&kind, &s, 0xBEAC);
            let mean = bluefi::dsp::power::mean(
                &trace.iter().map(|x| x.rssi_dbm).collect::<Vec<_>>(),
            );
            println!(
                "  {:>6} at {:>3.1} m: {:>2} reports, mean RSSI {:>6.1} dBm",
                device.name,
                dist,
                trace.len(),
                mean
            );
        }
    }
}
