//! Walk the paper's Sec 4.6 impairment ladder interactively: generate the
//! waveform at each cumulative stage, look at its envelope/phase error and
//! whether a Bluetooth receiver still takes it.
//!
//! Run: `cargo run --release --example impairment_explorer`

use bluefi::bt::ble::{adv_air_bits, AdvPdu, AdvPduType};
use bluefi::bt::receiver::{GfskReceiver, ReceiverConfig};
use bluefi::core::pipeline::BlueFi;
use bluefi::core::stages::{waveform_at_stage, Stage};
use bluefi::dsp::bits::u64_to_bits_lsb;
use bluefi::wifi::channels::plan_channel;
use bluefi::wifi::subcarriers::SUBCARRIER_SPACING_HZ;

fn main() {
    let pdu = AdvPdu {
        pdu_type: AdvPduType::AdvNonconnInd,
        adv_address: [6, 5, 4, 3, 2, 1],
        adv_data: (0..20).collect(),
        tx_add: false,
    };
    let bits = adv_air_bits(&pdu, 38);
    let bf = BlueFi::default();
    let plan = plan_channel(2.426e9).unwrap();
    let rx = GfskReceiver::new(ReceiverConfig {
        channel_offset_hz: plan.subcarrier * SUBCARRIER_SPACING_HZ,
        ..Default::default()
    });
    let aa = u64_to_bits_lsb(bluefi::bt::ble::ADV_ACCESS_ADDRESS as u64, 32);
    println!("stage          env min/max        payload bit errors");
    for stage in Stage::all() {
        let wave = waveform_at_stage(&bf, &bits, plan, 71, stage);
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for v in &wave {
            let a = v.abs();
            lo = lo.min(a);
            hi = hi.max(a);
        }
        let demod = rx.demodulate(&wave);
        let errs = match rx.synchronize(&demod, &aa, bits.len()) {
            None => "NO SYNC".to_string(),
            Some(hit) => {
                let truth = &bits[40..];
                let n = truth.len().min(hit.bits.len());
                let e = (0..n).filter(|&i| truth[i] != hit.bits[i]).count();
                format!("{e}/{n}")
            }
        };
        println!("{:<14} {:>6.3} / {:>6.3}     {}", stage.label(), lo, hi, errs);
    }
}
